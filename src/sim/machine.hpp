// The simulated Butterfly machine.
//
// A Machine owns the event engine, the switch fabric, one memory module per
// node, and every fiber spawned onto a node.  All simulated code interacts
// with the hardware through this class:
//
//   * charge()/compute()/flops() advance the calling fiber's CPU time;
//   * read()/write()/atomic ops are timed memory transactions against the
//     owning node's module (queueing behind a busy module models the
//     "remote references steal memory cycles" effect from the paper);
//   * block_copy() models the PNC's microcoded block transfer;
//   * park()/wakeup() are the primitives the Chrysalis scheduler builds
//     blocking synchronization from.
//
// The engine is single-threaded and ties are sequence-numbered, so a run is
// a pure function of (config, program) — the property Instant Replay's
// verification tests depend on.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/fiber.hpp"
#include "sim/observe.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/switch_fabric.hpp"
#include "sim/time.hpp"

namespace bfly::parsim {
struct Msg;
enum class RefOp : std::uint8_t;
}  // namespace bfly::parsim

namespace bfly::sim {

struct ParsimRun;      // per-run parallel-engine state (machine.cpp)
struct ParsimAdapter;  // Machine <-> parsim::Driver glue (machine.cpp)

/// Host-side accounting for the last parallel run (shards == 0 when the
/// last run executed serially, including forfeited runs).  Observational,
/// like HostPerf; feeds the bench_host_simulator shard-sweep rows.
struct ParallelRunStats {
  std::uint32_t shards = 0;
  std::uint32_t threads = 0;
  std::uint64_t windows = 0;           ///< conservative windows executed
  std::uint64_t messages = 0;          ///< cross-shard messages delivered
  std::uint64_t barrier_wait_ns = 0;   ///< host ns in barriers, all threads
  std::uint64_t run_wall_ns = 0;       ///< host wall ns of the driver loop
};

class Machine {
 public:
  /// `faults` scripts hardware failures for this run; the default empty plan
  /// injects nothing and leaves the event stream byte-identical to a machine
  /// built before fault injection existed.
  explicit Machine(MachineConfig cfg, FaultPlan faults = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return cfg_; }
  /// The serial engine.  During a parallel run (host_shards > 1, not
  /// forfeited) this engine is idle — layers that post host timers through
  /// it (the Kernel, moviola's watchdog) always run forfeited, so they
  /// never observe the difference.
  Engine& engine() { return engine_; }
  Time now() const { return par_active_ ? par_now() : engine_.now(); }
  std::uint32_t nodes() const { return cfg_.nodes; }
  /// Deterministic RNG stream.  Under a parallel run each shard has its own
  /// stream (seeded from cfg.seed and the shard index), so draws stay
  /// deterministic per shard — but a workload that mixes rng() draws across
  /// nodes is shard-count-dependent; keep rng() use node-local.
  Rng& rng() { return par_active_ ? par_rng() : rng_; }
  MachineStats& stats() { return stats_; }
  SwitchFabric& fabric() { return fabric_; }

  // --- Fibers ---------------------------------------------------------------

  /// Create a fiber bound to `node`, runnable immediately (resumed by the
  /// engine at the current time unless `start_delay` is given).
  Fiber* spawn(NodeId node, std::function<void()> body,
               std::string name = {}, Time start_delay = 0);

  /// Create a fiber that stays parked until the first wakeup() — used by
  /// schedulers that control dispatch themselves.
  Fiber* spawn_parked(NodeId node, std::function<void()> body,
                      std::string name = {});

  /// Node of the currently executing fiber.
  NodeId current_node() const;
  /// Node of an arbitrary live fiber.
  NodeId node_of(Fiber* f) const;

  /// Run the machine until no events remain.  Returns final time.
  Time run();

  /// True when the last run() ended with live-but-blocked fibers: the
  /// simulated program deadlocked.  Moviola uses this plus the wait-for
  /// edges recorded by the synchronization layers.
  bool deadlocked() const { return live_count_ != 0; }
  std::vector<Fiber*> blocked_fibers() const;
  /// True while `f` has not finished or been reclaimed.  Wait observers
  /// hold raw Fiber pointers across kill-unwinds (which skip the wake
  /// hooks); this lets them prune the dead before dereferencing.  A reused
  /// address can alias a new fiber — fine for diagnosis, as the new
  /// fiber's name and state replace the old.
  bool fiber_live(Fiber* f) const { return fibers_.count(f) != 0; }

  /// True when live fibers remain but none has a resume scheduled: the
  /// event heap has quiesced to closure events (timers, watchdogs) only,
  /// so no fiber can ever run again unless a timer wakes it.  Meaningful
  /// from engine context (a posted closure); a running fiber is by
  /// definition not quiescent.  This is the trigger condition for
  /// bfly::moviola's deadlock analysis.
  bool quiescent() const {
    if (par_active_) return live_count_ != 0 && par_pending_fiber_events() == 0;
    return live_count_ != 0 && engine_.pending_fiber_events() == 0;
  }
  /// Fibers spawned and not yet finished.
  std::size_t live_fibers() const { return live_count_; }

  /// Host-side substrate cost of the run so far (events, switches,
  /// switch-free charges).  Observational; see sim/stats.hpp.  Parallel
  /// runs merge per-shard counters at run end, so read this between runs.
  HostPerf host_perf() const {
    return HostPerf{engine_.events_dispatched() + par_events_, fiber_resumes_,
                    fastpath_charges_, fastpath_};
  }
  /// True when charge() may take the switch-free fast path this run
  /// (config flag minus the BFLY_NO_FASTPATH environment override).
  bool fastpath_enabled() const { return fastpath_; }

  // --- Parallel host engine (src/parsim; see DESIGN.md §4f) -------------------

  /// Shard owning node `n` under the stable block partition: n * k / nodes
  /// for k effective shards.  Identity (always 0) when host_shards == 1.
  std::uint32_t shard_of(NodeId n) const {
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(n) * eff_shards_ / cfg_.nodes);
  }
  /// Effective shard count (config/env clamped to [1, nodes]).
  std::uint32_t host_shards() const { return eff_shards_; }
  /// Why the last run() executed serially, or nullptr when it actually ran
  /// parallel.  "host_shards=1" for a plain serial machine; otherwise one of
  /// the forfeit-matrix conditions (fault plan, observers, host timers, ...)
  /// — the same family of conditions that forfeits the charge fast path.
  const char* parallel_forfeit() const { return par_forfeit_; }
  /// Window/barrier accounting for the last parallel run (shards == 0 when
  /// the last run was serial or forfeited).
  const ParallelRunStats& parallel_stats() const { return par_stats_; }

  // --- Faults ----------------------------------------------------------------

  const FaultPlan& faults() const { return faults_; }
  /// True when any fault can occur this run (plan non-empty or a kill was
  /// scheduled programmatically).  Layers may use this to gate recovery
  /// bookkeeping so healthy runs stay byte-identical to pre-fault builds.
  bool faults_possible() const { return fault_checks_; }

  bool node_alive(NodeId n) const { return !node_dead_[n]; }
  std::uint32_t dead_nodes() const { return dead_nodes_count_; }

  /// True when a timed reference from `a` to `b` could currently complete:
  /// no active partition window cuts the pair and the switch fabric still
  /// has a healthy path (default or detour).  Says nothing about whether
  /// `b` is alive — dead and unreachable are distinct conditions (see
  /// NodeDeadError vs NetUnreachableError).  Host-side and uncharged, so
  /// recovery layers can consult ground truth without perturbing the run.
  bool reachable(NodeId a, NodeId b) const;

  /// Register a callback fired in engine context when a partition window
  /// heals (argument: index into faults().partitions).  Registering posts
  /// the plan's heal events, which keeps the engine running until the last
  /// subscribed heal — layers that reconcile on heal (bfly::serve) want
  /// exactly that.  Returns a handle for remove_heal_observer.
  std::uint64_t on_partition_heal(std::function<void(std::size_t)> fn);
  void remove_heal_observer(std::uint64_t id);

  /// Gray-failure stretch for `n`'s memory module at the current simulated
  /// time: 1.0 when healthy, the plan's factor inside a slow window.  Layers
  /// that model their own service stages off the memory path (Bridge's disk
  /// controller) multiply their charges by this so a slow node is slow all
  /// the way down.  Exact 1.0 (and zero float math) when the plan has no
  /// slow windows.
  double slow_factor(NodeId n) const;

  /// Schedule `node` to die at absolute simulated time `at` (in addition to
  /// any kills in the plan).  Must be called before run() reaches `at`.
  /// A silent kill skips the crash broadcast (see on_node_crash).
  void kill_node(NodeId node, Time at, bool silent = false);

  /// Register a callback invoked in engine context the moment a node dies,
  /// before the node's fibers unwind.  Observers run in registration order
  /// (the Kernel registers first, so higher layers see consistent kernel
  /// state).  They must not perform timed operations.  Returns a handle for
  /// remove_death_observer; holders that can die before the Machine must
  /// unregister in their destructor.
  ///
  /// Death observers model the simulator's own bookkeeping: they fire for
  /// every kill, silent or not (the scheduler must stop dispatching a dead
  /// node's processes regardless of who heard the crash).
  std::uint64_t on_node_death(std::function<void(NodeId)> fn);
  void remove_death_observer(std::uint64_t id);

  /// Like on_node_death, but models the machine-check broadcast peers
  /// observe: crash observers do NOT fire for silent kills.  Recovery
  /// layers (Uniform System, net::Mesh, Bridge) subscribe here; a silent
  /// death reaches them only through a failure detector (bfly::rescue) or a
  /// reference that touches the corpse.  Crash observers run after every
  /// death observer, still before the node's fibers unwind.
  std::uint64_t on_node_crash(std::function<void(NodeId)> fn);
  void remove_crash_observer(std::uint64_t id);

  // --- Time ------------------------------------------------------------------

  /// Consume `ns` of CPU time on the calling fiber.
  void charge(Time ns);
  /// Consume integer-op time (`n` register-level operations).
  void compute(std::uint64_t n) { charged_compute(n * cfg_.int_op_ns); }
  /// Consume floating-point time.
  void flops(std::uint64_t n) { charged_compute(n * cfg_.flop_ns); }
  /// Consume an explicit amount of compute time (tracked in NodeStats).
  void charged_compute(Time ns);
  /// Block the calling fiber until absolute time `t`.
  void sleep_until(Time t);

  /// Block the calling fiber until another fiber calls wakeup() on it.
  void park();
  /// Make a parked fiber runnable after `delay`.  Safe to call from the
  /// engine or any fiber; no-op if the fiber already finished.
  void wakeup(Fiber* f, Time delay = 0);

  /// Discard a parked fiber that will never run again (e.g. a suspended
  /// coroutine at teardown).  The fiber must not have a pending resume.
  void abandon(Fiber* f);

  // --- Physical memory --------------------------------------------------------

  /// First-fit allocation in `node`'s memory.  Throws SimError when the
  /// node is exhausted.  Untimed (the OS layer charges its own costs).
  PhysAddr alloc(NodeId node, std::size_t bytes, std::size_t align = 8);
  void free(PhysAddr addr, std::size_t bytes);
  /// Bytes currently allocated on a node.
  std::size_t allocated_on(NodeId node) const;
  /// Blocks on a node's free list (allocator introspection for tests:
  /// coalescing must keep this bounded under alloc/free churn).
  std::size_t free_blocks_on(NodeId node) const {
    return node_[node].free_list.size();
  }

  /// Timed single reference.  sizeof(T) must be <= 8.
  template <typename T>
  T read(PhysAddr a) {
    static_assert(sizeof(T) <= 8);
    if (par_active_) {
      // Split-phase under the parallel engine: the home shard applies the
      // reference (and captures the value) at its simulated arrival time.
      const std::uint64_t v =
          par_word_op(a, word_count(sizeof(T)), sizeof(T), par_read_op(), 0);
      T out;
      std::memcpy(&out, &v, sizeof(T));
      return out;
    }
    reference(a, word_count(sizeof(T)), MemOp::kRead);
    T v;
    std::memcpy(&v, raw(a, sizeof(T)), sizeof(T));
    return v;
  }

  template <typename T>
  void write(PhysAddr a, T v) {
    static_assert(sizeof(T) <= 8);
    if (par_active_) {
      std::uint64_t w = 0;
      std::memcpy(&w, &v, sizeof(T));
      par_word_op(a, word_count(sizeof(T)), sizeof(T), par_write_op(), w);
      return;
    }
    reference(a, word_count(sizeof(T)), MemOp::kWrite);
    std::memcpy(raw(a, sizeof(T)), &v, sizeof(T));
  }

  /// PNC atomic operations (linearized at completion time).  When switch
  /// combining is armed (MachineConfig::switch_combining + contention
  /// modelling), concurrent fetch_add_u32 calls on one word may merge at a
  /// switch stage instead of queueing at the home module — see
  /// SwitchFabric::combine_add; the data result is identical either way.
  std::uint32_t fetch_add_u32(PhysAddr a, std::uint32_t delta);
  std::uint32_t fetch_or_u32(PhysAddr a, std::uint32_t bits);
  /// Atomically set the word to 1; returns the previous value.
  std::uint32_t test_and_set(PhysAddr a);
  /// Atomic exchange: store `v`, return the previous value.
  std::uint32_t swap_u32(PhysAddr a, std::uint32_t v);
  /// Compare-and-swap: store `desired` iff the word equals `expect`.
  /// Returns the previous value (== expect exactly when the store landed).
  std::uint32_t cas_u32(PhysAddr a, std::uint32_t expect,
                        std::uint32_t desired);

  /// Microcoded block transfer between physical locations.  Charged as one
  /// round trip plus a per-word streaming cost; occupies the source and
  /// destination modules while streaming.
  void block_copy(PhysAddr dst, PhysAddr src, std::size_t bytes);
  /// Block transfer into the calling fiber's private (register/stack) space.
  void block_read(void* host_dst, PhysAddr src, std::size_t bytes);
  void block_write(PhysAddr dst, const void* host_src, std::size_t bytes);

  /// Charge `n` back-to-back word references to `target` in a single event
  /// (used by tight inner loops; contention is accounted in aggregate).
  void access_words(PhysAddr a, std::uint32_t n, bool write = false);

  // --- Observation (correctness tooling; see sim/observe.hpp) -----------------
  // All hooks are host-side and uncharged: attaching an observer leaves the
  // simulated event stream byte-identical to a bare run.

  void set_observer(MemObserver* o) { observer_ = o; }
  MemObserver* observer() const { return observer_; }

  /// Publish a happens-before release/acquire edge on `chan` for the
  /// calling context.  No-ops without an observer; synchronization layers
  /// call these from the fiber performing the operation.
  void observe_release(std::uint64_t chan) {
    if (observer_) {
      HookScope h(this);
      observer_->on_release(Fiber::current(), chan);
    }
  }
  void observe_acquire(std::uint64_t chan) {
    if (observer_) {
      HookScope h(this);
      observer_->on_acquire(Fiber::current(), chan);
    }
  }
  /// Lock-order events for acquisition-graph lints.
  void observe_lock_acquire(std::uint64_t lock) {
    if (observer_) {
      HookScope h(this);
      observer_->on_lock_acquire(Fiber::current(), lock);
    }
    if (wait_observer_) {
      HookScope h(this);
      wait_observer_->on_hold(Fiber::current(), lock, true);
    }
  }
  void observe_lock_release(std::uint64_t lock) {
    if (observer_) {
      HookScope h(this);
      observer_->on_lock_release(Fiber::current(), lock);
    }
    if (wait_observer_) {
      HookScope h(this);
      wait_observer_->on_hold(Fiber::current(), lock, false);
    }
  }
  /// Name a range of physical memory for diagnostic reports.
  void label_memory(PhysAddr a, std::size_t bytes, std::string name) {
    if (observer_) {
      HookScope h(this);
      observer_->on_label(a, bytes, std::move(name));
    }
  }

  // --- Wait observation (deadlock analysis; see sim/observe.hpp and
  // src/moviola).  Same uncharged contract as the hooks above. ---------------

  void set_wait_observer(WaitObserver* o) { wait_observer_ = o; }
  WaitObserver* wait_observer() const { return wait_observer_; }

  /// The calling fiber is about to block on `chan`.
  void observe_block(std::uint64_t chan, WaitKind kind) {
    if (wait_observer_) {
      HookScope h(this);
      wait_observer_->on_block(Fiber::current(), chan, kind);
    }
  }
  /// The calling fiber returned from a blocking wait on `chan`.
  void observe_wake(std::uint64_t chan, WakeReason why) {
    if (wait_observer_) {
      HookScope h(this);
      wait_observer_->on_wake(Fiber::current(), chan, why);
    }
  }
  /// A post to `chan` with the given delivery outcome.
  void observe_post(std::uint64_t chan, PostOutcome out) {
    if (wait_observer_) {
      HookScope h(this);
      wait_observer_->on_post(Fiber::current(), chan, out);
    }
  }
  /// One failed spin probe on `lock` by the calling fiber.
  void observe_spin(std::uint64_t lock) {
    if (wait_observer_) {
      HookScope h(this);
      wait_observer_->on_spin(Fiber::current(), lock);
    }
  }

  /// Charges issued from inside an observer hook.  The hooks' contract is
  /// strictly host-side work; a nonzero count means an observer perturbed
  /// the run it was watching (the blocking-discipline lint reports it).
  std::uint64_t hook_charges() const { return hook_charges_; }

  // --- Tracing (observability; see sim/observe.hpp and src/scope) -------------
  // Same uncharged contract as the observer hooks.  Annotation sites pass
  // string literals and integers only, so an untraced run does no work
  // beyond the pointer test and allocates nothing.

  void set_trace_sink(TraceSink* s) { trace_ = s; }
  TraceSink* trace_sink() const { return trace_; }

  /// Open a span on the calling context's track.
  void trace_begin(const char* cat, const char* name, std::uint64_t arg = 0) {
    if (trace_) {
      HookScope h(this);
      trace_->on_span_begin(Fiber::current(), trace_node(), cat, name, arg);
    }
  }
  /// Close the innermost open span on the calling context's track.
  void trace_end() {
    if (trace_) {
      HookScope h(this);
      trace_->on_span_end(Fiber::current(), trace_node());
    }
  }
  /// A point event on the calling context's track.
  void trace_instant(const char* cat, const char* name,
                     std::uint64_t arg = 0) {
    if (trace_) {
      HookScope h(this);
      trace_->on_instant(Fiber::current(), trace_node(), cat, name, arg);
    }
  }

  // --- Untimed backdoor (tests, tooling, result extraction) -------------------
  template <typename T>
  T peek(PhysAddr a) const {
    T v;
    std::memcpy(&v, raw_const(a, sizeof(T)), sizeof(T));
    return v;
  }
  template <typename T>
  void poke(PhysAddr a, T v) {
    std::memcpy(raw_mut(a, sizeof(T)), &v, sizeof(T));
  }
  void peek_bytes(void* dst, PhysAddr a, std::size_t n) const {
    std::memcpy(dst, raw_const(a, n), n);
  }
  void poke_bytes(PhysAddr a, const void* src, std::size_t n) {
    std::memcpy(raw_mut(a, n), src, n);
  }

 private:
  /// RAII marker bracketing every observer-hook invocation: charge() counts
  /// charges issued while one is live (hook_charges_), turning "charged
  /// work inside an uncharged hook" from a silent heisenbug into a lint.
  class HookScope {
   public:
    explicit HookScope(Machine* m) : m_(m) { ++m_->hook_depth_; }
    ~HookScope() { --m_->hook_depth_; }
    HookScope(const HookScope&) = delete;
    HookScope& operator=(const HookScope&) = delete;

   private:
    Machine* m_;
  };

  struct FiberCtl {
    std::unique_ptr<Fiber> fiber;
    NodeId node = 0;
    bool resume_pending = false;
    bool killed = false;  // node died; unwind via FiberKill at next yield
    // Intrusive links for the live list (spawned and not yet finished), in
    // spawn order.  O(1) reap instead of the O(live) vector erase; order is
    // part of the deterministic contract (do_kill unwinds in spawn order).
    FiberCtl* live_prev = nullptr;
    FiberCtl* live_next = nullptr;
    // Parallel-engine fields: owning shard (== shard_of(node), cached for
    // cross-shard wakeup routing) and the landing area a split-phase reply
    // fills in before resuming the fiber.
    std::uint32_t shard = 0;
    std::uint64_t reply_value = 0;
    Time reply_queue = 0;
    std::vector<std::uint8_t> reply_blob;
  };
  struct FreeBlock {
    std::uint32_t offset;
    std::uint32_t size;
  };
  struct Node {
    std::vector<std::uint8_t> mem;   // grown lazily up to memory_per_node
    std::vector<FreeBlock> free_list;
    std::uint32_t high_water = 0;    // bytes ever touched
    std::size_t allocated = 0;
    Time module_busy_until = 0;
  };

  static std::uint32_t word_count(std::size_t bytes) {
    return static_cast<std::uint32_t>((bytes + 3) / 4);
  }

  /// Perform + charge one reference of `words` words to a.node.
  void reference(PhysAddr a, std::uint32_t words, MemOp op);
  /// Report one reference to the registered observer (uncharged).
  void observe_access(PhysAddr a, std::uint32_t words, MemOp op,
                      NodeId requester) {
    if (observer_) {
      HookScope h(this);
      observer_->on_access(Fiber::current(), requester, a, words, op);
    }
  }
  /// Compute completion time of a reference departing now; updates module
  /// occupancy and stats but does not charge.
  /// The fetch_add reference path with switch combining armed: either
  /// merges into an in-flight add's window or leads a new transaction and
  /// opens one.  Charged like reference(a, 1, kAtomic).
  void combining_fetch_add_reference(PhysAddr a);
  Time reference_finish(NodeId requester, NodeId home, std::uint32_t words,
                        Time* queue_ns);
  /// Report one finished reference with its contention share to the trace
  /// sink (uncharged; MemObserver::on_access cannot see queue time).
  void trace_reference(NodeId requester, NodeId home, std::uint32_t words,
                       Time queue_ns, MemOp op) {
    if (trace_) {
      HookScope h(this);
      trace_->on_reference(requester, home, words, queue_ns, op,
                           engine_.now());
    }
  }
  /// Node of the calling context for trace events (kTraceHostNode when no
  /// fiber is running).
  NodeId trace_node() const;

  std::uint8_t* raw(PhysAddr a, std::size_t n);
  std::uint8_t* raw_mut(PhysAddr a, std::size_t n);
  const std::uint8_t* raw_const(PhysAddr a, std::size_t n) const;
  void ensure_backing(Node& nd, std::size_t end) const;

  FiberCtl* ctl(Fiber* f);
  /// Control block of the currently executing fiber, or nullptr from engine
  /// context.  One pointer compare on the hot path: cur_ctl_ is maintained
  /// around every resume, and the map lookup only backstops foreign fibers
  /// (a fiber of another Machine, or one driven outside this engine).
  FiberCtl* current_ctl() const {
    Fiber* f = Fiber::current();
    if (f == nullptr) return nullptr;
    if (par_active_) return par_current_ctl(f);
    if (cur_ctl_ != nullptr && cur_ctl_->fiber.get() == f) return cur_ctl_;
    auto it = fibers_.find(f);
    return it == fibers_.end() ? nullptr
                               : const_cast<FiberCtl*>(&it->second);
  }
  void schedule_resume(FiberCtl* c, Time at);
  /// Trampoline for the engine's typed fiber events (see Engine::
  /// set_fiber_handler): `payload` is the FiberCtl* scheduled by
  /// schedule_resume.
  static void fiber_event(void* machine, void* payload);
  /// Resume `c` now, maintaining cur_ctl_, and reap it if it finished.
  void do_resume(FiberCtl* c);
  void reap(FiberCtl* c);
  void live_link(FiberCtl* c);
  void live_unlink(FiberCtl* c);

  /// Unwind the calling fiber if its node died.  No-op while an exception
  /// is already in flight (yielding mid-unwind would corrupt the fiber).
  void check_kill(FiberCtl* c);
  /// Raise NodeDeadError (after charging the failed round trip) when a
  /// timed operation targets a dead node.
  // Address validation happens before the timing model touches per-node
  // state: a wild node id must raise SimError, not index off node_[].
  void check_node(NodeId home) const;
  void check_target(NodeId home);
  void do_kill(NodeId n, bool silent);
  void maybe_mem_fault(NodeId home);
  /// True when an active partition window separates a and b right now.
  bool cut_between(NodeId a, NodeId b) const;
  /// Raise NetUnreachableError (after charging the PNC's futile retry
  /// budget) when a timed operation crosses an active partition.
  void check_reach(NodeId req, NodeId home);
  void fire_heal(std::size_t idx);

  // --- Parallel host engine internals (machine.cpp; see DESIGN.md §4f) ------
  friend struct ParsimRun;
  friend struct ParsimAdapter;
  /// nullptr when the machine may run parallel right now; otherwise the
  /// forfeit reason (stable string literal).
  const char* parallel_forfeit_reason() const;
  Time par_run();
  Time par_now() const;
  Rng& par_rng();
  FiberCtl* par_current_ctl(Fiber* f) const;
  std::size_t par_pending_fiber_events() const;
  /// Debug guard for satellite invariant: Machine per-node internals are
  /// only touched from the owning shard's worker thread.
  void par_assert_owner(NodeId n) const;
  void par_charge(Time ns);
  void par_wakeup(Fiber* f, Time delay);
  /// Local-module completion: serial reference_finish specialized to
  /// req == home on the calling shard's engine.
  Time par_local_finish(NodeId node, std::uint32_t words, Time* queue_ns);
  /// Split-phase single reference (read/write/atomic).  Returns the value
  /// captured by the home shard at arrival time.
  std::uint64_t par_word_op(PhysAddr a, std::uint32_t words,
                            std::uint32_t bytes, parsim::RefOp op,
                            std::uint64_t operand);
  static parsim::RefOp par_read_op();
  static parsim::RefOp par_write_op();
  void par_access_words(PhysAddr a, std::uint32_t n);
  void par_block_read(void* host_dst, PhysAddr src, std::size_t bytes);
  void par_block_write(PhysAddr dst, const void* host_src, std::size_t bytes);
  void par_block_copy(PhysAddr dst, PhysAddr src, std::size_t bytes);
  void par_send(std::uint32_t dst_shard, parsim::Msg&& m);
  /// Apply + answer one delivered message on the owning shard (the tagged
  /// branch of fiber_event).
  void par_deliver(parsim::Msg* m);
  std::uint64_t par_apply_word(PhysAddr a, parsim::RefOp op,
                               std::uint64_t operand, std::uint32_t bytes);

  MachineConfig cfg_;
  FaultPlan faults_;
  Engine engine_;
  SwitchFabric fabric_;
  Rng rng_;
  Rng fault_rng_;
  MachineStats stats_;
  mutable std::vector<Node> node_;
  // Fiber* -> control block.  unordered_map gives the pointer stability the
  // engine's typed events and cur_ctl_ rely on; the hot paths never touch
  // it (current_ctl() caches, typed events carry the FiberCtl* directly).
  std::unordered_map<Fiber*, FiberCtl> fibers_;
  FiberCtl* live_head_ = nullptr;  // live fibers, intrusive, spawn order
  FiberCtl* live_tail_ = nullptr;
  std::size_t live_count_ = 0;
  FiberCtl* cur_ctl_ = nullptr;  // control block of the running fiber

  bool fastpath_ = true;  // cfg.host_fastpath minus BFLY_NO_FASTPATH
  std::uint64_t fiber_resumes_ = 0;
  std::uint64_t fastpath_charges_ = 0;

  // Parallel host engine state.  par_active_ is true only inside a
  // non-forfeited parallel run(); every hot-path branch on it predicts
  // perfectly in serial mode.  fiber_mu_ guards fibers_ / the live list /
  // live_count_ during parallel runs only (spawn, reap, wakeup lookup);
  // serial mode never locks it.
  std::uint32_t eff_shards_ = 1;       // min(max(host_shards, 1), nodes)
  bool par_active_ = false;
  const char* par_forfeit_ = "host_shards=1";
  std::uint64_t par_events_ = 0;       // shard events merged at run end
  ParallelRunStats par_stats_;
  std::unique_ptr<ParsimRun> par_;     // live only during a parallel run
  mutable std::mutex fiber_mu_;

  bool fault_checks_ = false;  // any fault possible this run
  bool combining_ = false;     // switch combining armed (fetch_add hot path)
  bool has_slow_ = false;      // plan carries slow-node windows
  std::vector<std::uint8_t> node_dead_;
  std::uint32_t dead_nodes_count_ = 0;
  // Partition windows, precomputed as per-node side maps (0 = unlisted,
  // 1 = side_a, 2 = side_b) for O(1) cut checks on the reference path.
  struct Cut {
    Time start = 0;
    Time heal = 0;
    std::vector<std::int8_t> side;
  };
  std::vector<Cut> cuts_;
  bool has_cuts_ = false;
  struct HealObserver {
    std::uint64_t id;
    std::function<void(std::size_t)> fn;
  };
  std::vector<HealObserver> heal_observers_;
  bool heal_events_posted_ = false;
  struct DeathObserver {
    std::uint64_t id;
    std::function<void(NodeId)> fn;
  };
  std::vector<DeathObserver> death_observers_;
  std::vector<DeathObserver> crash_observers_;
  std::uint64_t next_observer_id_ = 1;
  MemObserver* observer_ = nullptr;
  TraceSink* trace_ = nullptr;
  WaitObserver* wait_observer_ = nullptr;
  int hook_depth_ = 0;               // live HookScopes on this host stack
  std::uint64_t hook_charges_ = 0;   // charges issued from inside a hook
};

/// RAII span: begins on construction, ends on destruction — so spans close
/// correctly across early returns, NodeDeadError, and FiberKill unwinds.
class TraceSpan {
 public:
  TraceSpan(Machine& m, const char* cat, const char* name,
            std::uint64_t arg = 0)
      : m_(m) {
    m_.trace_begin(cat, name, arg);
  }
  ~TraceSpan() { m_.trace_end(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Machine& m_;
};

}  // namespace bfly::sim
