// Stackful fibers for simulated processors.
//
// Every simulated thread of control (Chrysalis process, Uniform System
// manager, Ant Farm thread, ...) runs on a Fiber.  Fibers are cooperatively
// scheduled by the discrete-event engine on a single host thread, so the
// whole simulation is deterministic.  Code running on a fiber blocks by
// switching back to the engine context; the engine resumes it from a timed
// event.  This lets the ported Butterfly APIs (event_wait, dequeue, ...)
// look exactly like the originals: plain blocking calls.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace bfly::sim {

/// Thrown inside a fiber whose node has been killed by a FaultPlan.  It is
/// raised from the machine's yield points (charge/park) so the fiber's stack
/// unwinds cleanly — destructors run, host resources are released — and is
/// swallowed by Fiber::run_body.  User code should never catch it (catching
/// by value or by `...` and continuing would keep a dead node's code alive).
struct FiberKill {};

class Fiber {
 public:
  enum class State { kCreated, kRunnable, kRunning, kBlocked, kFinished };

  /// `body` runs on the fiber's own stack the first time it is resumed.
  Fiber(std::function<void()> body, std::size_t stack_bytes,
        std::string name = {});
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the engine context into this fiber.  Returns when the
  /// fiber yields, blocks, or finishes.  Must not be called from a fiber.
  void resume();

  /// Switch from the currently running fiber back to the engine.  The
  /// fiber's state becomes kBlocked until someone calls resume() again.
  static void yield_to_engine();

  /// The fiber currently executing, or nullptr when the engine is running.
  static Fiber* current();

  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  // ASan bookkeeping: the fake-stack handle saved while this fiber is
  // switched out (see the fiber-switch annotations in fiber.cpp).  Unused
  // (but harmless) in non-sanitized builds.
  void* asan_fake_stack_ = nullptr;
  ucontext_t ctx_{};
  State state_ = State::kCreated;
  std::string name_;
};

}  // namespace bfly::sim
