#include "moviola/wait_graph.hpp"

#include <algorithm>
#include <sstream>

#include "chrysalis/kernel.hpp"
#include "sim/fiber.hpp"

namespace bfly::moviola {

const char* to_string(StuckKind k) {
  switch (k) {
    case StuckKind::kDeadlock:
      return "deadlock";
    case StuckKind::kLostWakeup:
      return "lost-wakeup";
    case StuckKind::kStarvation:
      return "starvation";
    case StuckKind::kOrphanWait:
      return "orphan-wait";
  }
  return "?";
}

Detector::Detector(sim::Machine& m, chrys::Kernel* kernel)
    : m_(m), kernel_(kernel) {
  m_.set_wait_observer(this);
}

Detector::~Detector() {
  if (m_.wait_observer() == this) m_.set_wait_observer(nullptr);
}

void Detector::on_block(sim::Fiber* f, std::uint64_t chan,
                        sim::WaitKind kind) {
  if (f == nullptr) return;
  blocked_[f] = WaitState{chan, kind};
  chans_[chan].kind = kind;
  // Blocking-discipline lint: a fiber that blocks in the kernel while
  // holding a spin lock wedges every spinner on that lock until it wakes —
  // and forever, if its wakeup depends on one of those spinners.
  if (auto it = held_.find(f); it != held_.end() && !it->second.empty()) {
    for (const std::uint64_t lock : it->second) {
      lints_.push_back(LintReport{
          LintReport::Kind::kBlockUnderLock, fiber_name(f),
          fiber_name(f) + " blocked on " + chan_name(chan) +
              " while holding spin lock " + chan_name(lock)});
    }
  }
}

void Detector::on_wake(sim::Fiber* f, std::uint64_t chan,
                       sim::WakeReason /*why*/) {
  if (f == nullptr) return;
  auto it = blocked_.find(f);
  if (it != blocked_.end() && it->second.chan == chan) blocked_.erase(it);
}

void Detector::on_post(sim::Fiber* f, std::uint64_t chan,
                       sim::PostOutcome out) {
  ChanState& c = chans_[chan];
  if (out == sim::PostOutcome::kOverwrote) ++c.overwrites;
  if (f == nullptr) return;  // engine/host posts carry no wait-for edge
  if (std::find(c.posters.begin(), c.posters.end(), f) == c.posters.end())
    c.posters.push_back(f);
}

void Detector::on_spin(sim::Fiber* f, std::uint64_t lock) {
  if (f == nullptr) return;
  SpinState& s = spin_[f];
  if (s.lock != lock) s = SpinState{lock, 0};
  ++s.streak;
}

void Detector::on_hold(sim::Fiber* f, std::uint64_t lock, bool held) {
  if (held) {
    lock_holder_[lock] = f;
    if (f != nullptr) {
      held_[f].insert(lock);
      // A successful acquisition ends the probe streak.
      if (auto it = spin_.find(f); it != spin_.end() && it->second.lock == lock)
        spin_.erase(it);
    }
  } else {
    if (auto it = lock_holder_.find(lock); it != lock_holder_.end())
      lock_holder_.erase(it);
    if (f != nullptr) {
      if (auto it = held_.find(f); it != held_.end()) it->second.erase(lock);
    }
  }
}

std::string Detector::fiber_name(sim::Fiber* f) const {
  if (f == nullptr) return "<host>";
  if (!f->name().empty()) return f->name();
  std::ostringstream os;
  os << "fiber@" << static_cast<const void*>(f);
  return os.str();
}

std::string Detector::chan_name(std::uint64_t chan) const {
  std::ostringstream os;
  const std::uint64_t space = chan >> 62;
  if (space == 1) {  // chan_of_oid
    const auto oid = static_cast<std::uint32_t>(chan & 0xffffffffu);
    auto it = chans_.find(chan);
    const bool dq =
        it != chans_.end() && it->second.kind == sim::WaitKind::kDualQueue;
    os << (dq ? "dq#" : "event#") << oid;
  } else if (space == 2) {  // chan_of_stream
    os << "stream#" << static_cast<std::uint32_t>(chan & 0xffffffffu);
  } else {  // chan_of(PhysAddr)
    os << "lock@node" << static_cast<std::uint32_t>(chan >> 32) << "+0x"
       << std::hex << static_cast<std::uint32_t>(chan & 0xffffffffu);
  }
  return os.str();
}

std::uint64_t Detector::overwrites(std::uint64_t chan) const {
  auto it = chans_.find(chan);
  return it == chans_.end() ? 0 : it->second.overwrites;
}

void Detector::append_charged_hook_lint() {
  if (charged_hook_reported_ || m_.hook_charges() == 0) return;
  charged_hook_reported_ = true;
  std::ostringstream os;
  os << "observer hooks charged simulated time " << m_.hook_charges()
     << " time(s): instrumented runs are no longer event-identical to bare "
        "runs";
  lints_.push_back(
      LintReport{LintReport::Kind::kChargedHook, "<observer>", os.str()});
}

std::vector<StuckReport> Detector::analyze() {
  findings_.clear();
  append_charged_hook_lint();

  // Kill-unwinds skip the wake hooks (the fiber dies inside block_self),
  // so entries can outlive their fibers.  Prune the dead before touching
  // any Fiber*.
  std::erase_if(blocked_, [&](const auto& e) { return !m_.fiber_live(e.first); });
  std::erase_if(spin_, [&](const auto& e) { return !m_.fiber_live(e.first); });
  std::erase_if(held_, [&](const auto& e) { return !m_.fiber_live(e.first); });
  std::erase_if(lock_holder_, [&](const auto& e) {
    return e.second != nullptr && !m_.fiber_live(e.second);
  });

  // Deterministic node order: unordered_map iteration depends on pointer
  // hashing, so sort the stuck fibers by (name, channel) first and work in
  // index space from here on.
  std::vector<sim::Fiber*> nodes;
  nodes.reserve(blocked_.size());
  for (const auto& [f, w] : blocked_) nodes.push_back(f);
  std::sort(nodes.begin(), nodes.end(), [&](sim::Fiber* a, sim::Fiber* b) {
    const std::string an = fiber_name(a), bn = fiber_name(b);
    if (an != bn) return an < bn;
    return blocked_.at(a).chan < blocked_.at(b).chan;
  });
  std::unordered_map<sim::Fiber*, std::size_t> index;
  for (std::size_t i = 0; i < nodes.size(); ++i) index[nodes[i]] = i;

  // Wait-for edges: a blocked waiter waits for every *stuck* fiber in the
  // poster history of its channel.  A live (running or runnable) poster
  // means the wait can still be satisfied — no edge, no knot.
  const std::size_t n = nodes.size();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    const WaitState& w = blocked_.at(nodes[i]);
    auto it = chans_.find(w.chan);
    if (it == chans_.end()) continue;
    for (sim::Fiber* p : it->second.posters) {
      if (p == nodes[i]) continue;
      if (auto pi = index.find(p); pi != index.end())
        adj[i].push_back(pi->second);
    }
  }

  // Tarjan SCC, iterative (fixture graphs are tiny, but the explorer can
  // park hundreds of app fibers at once).
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> idx(n, kUnvisited), low(n, 0), comp(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0, next_comp = 0;
  struct Frame {
    std::size_t v, edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (idx[root] != kUnvisited) continue;
    std::vector<Frame> frames{{root, 0}};
    idx[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.edge < adj[fr.v].size()) {
        const std::size_t w = adj[fr.v][fr.edge++];
        if (idx[w] == kUnvisited) {
          idx[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          low[fr.v] = std::min(low[fr.v], idx[w]);
        }
      } else {
        if (low[fr.v] == idx[fr.v]) {
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == fr.v) break;
          }
          ++next_comp;
        }
        const std::size_t v = fr.v;
        frames.pop_back();
        if (!frames.empty())
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }

  // An SCC of size > 1 is a wait-for cycle.  (Size-1 components cannot
  // self-loop: a fiber's own posts are excluded from its edges.)
  std::vector<std::vector<std::size_t>> sccs(next_comp);
  for (std::size_t i = 0; i < n; ++i) sccs[comp[i]].push_back(i);
  std::vector<bool> in_cycle(n, false);

  auto make_report = [&](StuckKind kind,
                         const std::vector<std::size_t>& members) {
    StuckReport r;
    r.kind = kind;
    std::ostringstream os;
    os << to_string(kind) << ":";
    for (const std::size_t i : members) {
      sim::Fiber* f = nodes[i];
      const WaitState& w = blocked_.at(f);
      r.members.push_back(fiber_name(f));
      r.channels.push_back(w.chan);
      r.processes.push_back(kernel_ ? kernel_->process_of(f) : 0);
      os << " " << fiber_name(f) << " waits " << chan_name(w.chan) << ";";
    }
    r.detail = os.str();
    findings_.push_back(std::move(r));
  };

  for (auto& scc : sccs) {
    if (scc.size() < 2) continue;
    std::sort(scc.begin(), scc.end());  // Tarjan emits reverse topological
    for (const std::size_t i : scc) in_cycle[i] = true;
    make_report(StuckKind::kDeadlock, scc);
  }

  // Acyclic stuck fibers: lost wakeup when the channel's history shows an
  // overwrite (the wakeup existed and was destroyed), orphan wait
  // otherwise.
  for (std::size_t i = 0; i < n; ++i) {
    if (in_cycle[i]) continue;
    const WaitState& w = blocked_.at(nodes[i]);
    auto it = chans_.find(w.chan);
    const bool lost = it != chans_.end() && it->second.overwrites > 0;
    make_report(lost ? StuckKind::kLostWakeup : StuckKind::kOrphanWait, {i});
  }

  // Starving spinners: runnable, so never in blocked_ — report any probe
  // streak that reached the threshold, with the current holder if known.
  std::vector<sim::Fiber*> spinners;
  for (const auto& [f, s] : spin_)
    if (s.streak >= spin_streak_threshold_) spinners.push_back(f);
  std::sort(spinners.begin(), spinners.end(),
            [&](sim::Fiber* a, sim::Fiber* b) {
              return fiber_name(a) < fiber_name(b);
            });
  for (sim::Fiber* f : spinners) {
    const SpinState& s = spin_.at(f);
    StuckReport r;
    r.kind = StuckKind::kStarvation;
    r.members.push_back(fiber_name(f));
    r.channels.push_back(s.lock);
    r.processes.push_back(kernel_ ? kernel_->process_of(f) : 0);
    std::ostringstream os;
    os << "starvation: " << fiber_name(f) << " spun " << s.streak
       << " probes on " << chan_name(s.lock);
    if (auto h = lock_holder_.find(s.lock); h != lock_holder_.end())
      os << " held by " << fiber_name(h->second);
    r.detail = os.str();
    findings_.push_back(std::move(r));
  }

  return findings_;
}

std::string Detector::report() const {
  std::ostringstream os;
  os << "moviola: " << findings_.size() << " finding(s), " << lints_.size()
     << " lint(s)\n";
  for (const auto& f : findings_) os << "  " << f.detail << "\n";
  for (const auto& l : lints_) os << "  lint: " << l.detail << "\n";
  return os.str();
}

void Detector::arm_watchdog(sim::Time period) {
  watchdog_period_ = period;
  last_resumes_ = m_.host_perf().fiber_resumes;
  m_.engine().post_in(period, [this] { watchdog_tick(); });
}

void Detector::watchdog_tick() {
  if (fired_ || m_.live_fibers() == 0) return;  // drained or done: disarm
  const std::uint64_t resumes = m_.host_perf().fiber_resumes;
  if (m_.quiescent() && blocked_.size() == m_.live_fibers() &&
      resumes == last_resumes_) {
    // A full period elapsed with live fibers, no scheduled resumes, and no
    // fiber having run: the heap is down to timers that are not making
    // progress.  Capture the analysis and disarm so the heap can drain.
    fired_ = true;
    analyze();
    return;
  }
  last_resumes_ = resumes;
  m_.engine().post_in(watchdog_period_, [this] { watchdog_tick(); });
}

}  // namespace bfly::moviola
