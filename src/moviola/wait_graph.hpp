// bfly::moviola — wait-for-graph deadlock analysis over the simulator's
// blocking edges.
//
// The Detector is a sim::WaitObserver: it watches every blocking wait,
// wakeup, post and spin probe the synchronization layers publish (see
// sim/observe.hpp) and maintains
//
//   * the set of currently blocked fibers, each with the channel it waits
//     on (every Chrysalis event wait, dual-queue dequeue, Bridge
//     request/reply, net::Stream read and US wait_idle funnels through
//     those two kernel primitives, so two hook sites cover the stack);
//   * per-channel poster history — the distinct fibers ever observed
//     feeding each channel, which becomes the wait-for edge heuristic:
//     a blocked waiter *waits for* the fibers that have historically
//     satisfied its channel;
//   * per-channel overwrite counts (an event post that clobbered a
//     pending datum destroyed a wakeup: binary-semaphore semantics);
//   * spin-lock holds and per-fiber probe streaks (spinners are runnable,
//     never blocked — starvation shows up as an unbounded streak).
//
// analyze() builds the wait-for graph over the stuck fibers and classifies
// each strongly connected knot:
//
//   kDeadlock    — a cycle: every member waits on a channel fed only by
//                  other members.  The classic 3-process event ring.
//   kLostWakeup  — blocked on a channel whose history shows an overwrite:
//                  the wakeup existed and was destroyed (paper §3.3's
//                  dual-queue/event pitfalls).
//   kStarvation  — a spinner whose probe streak passed the threshold while
//                  the run made progress elsewhere: runnable but starved.
//   kOrphanWait  — blocked with no cycle and no overwrite: the poster
//                  simply never arrived (or died; see PostOutcome).
//
// Everything here is host-side and uncharged; attaching a Detector leaves
// the simulated run event-identical to a bare one (the machine forfeits
// the charge() fast path while any observer is attached, and the moviola
// tests assert log equality through Instant Replay).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::chrys {
class Kernel;
}

namespace bfly::moviola {

/// Why a set of fibers is stuck.
enum class StuckKind : std::uint8_t {
  kDeadlock,    ///< wait-for cycle among the members
  kLostWakeup,  ///< waiting on a channel whose wakeup was overwritten
  kStarvation,  ///< runnable spinner starved past the probe threshold
  kOrphanWait,  ///< blocked; no cycle, no overwrite — poster never came
};

const char* to_string(StuckKind k);

/// One stuck knot: the fibers involved and the channels between them.
struct StuckReport {
  StuckKind kind = StuckKind::kOrphanWait;
  std::vector<std::string> members;      ///< fiber names, deterministic order
  std::vector<std::uint64_t> channels;   ///< channels the members wait/spin on
  std::vector<std::uint32_t> processes;  ///< kernel oids (0 for non-process)
  std::string detail;                    ///< one-line symbolized summary
};

/// Blocking-discipline violations (the moviola lints).
struct LintReport {
  enum class Kind : std::uint8_t {
    kBlockUnderLock,  ///< blocking kernel call while holding a spin lock
    kChargedHook,     ///< observer hook charged simulated time
  };
  Kind kind = Kind::kBlockUnderLock;
  std::string actor;   ///< fiber name ("<host>" for engine context)
  std::string detail;  ///< symbolized description
};

/// Wait-for-graph deadlock detector.  Attach to a Machine (one per
/// machine); pass the Kernel when you want reports cross-checked against
/// Kernel::blocked_processes() and symbolized with process names.
class Detector final : public sim::WaitObserver {
 public:
  explicit Detector(sim::Machine& m, chrys::Kernel* kernel = nullptr);
  ~Detector() override;

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  // --- sim::WaitObserver ------------------------------------------------------
  void on_block(sim::Fiber* f, std::uint64_t chan, sim::WaitKind kind) override;
  void on_wake(sim::Fiber* f, std::uint64_t chan, sim::WakeReason why) override;
  void on_post(sim::Fiber* f, std::uint64_t chan, sim::PostOutcome out) override;
  void on_spin(sim::Fiber* f, std::uint64_t lock) override;
  void on_hold(sim::Fiber* f, std::uint64_t lock, bool held) override;

  // --- Analysis ---------------------------------------------------------------

  /// Build the wait-for graph over the currently stuck fibers and classify.
  /// Sound when the run has quiesced (after run() returns with
  /// machine.deadlocked(), or from the watchdog): at that point every
  /// blocked fiber is genuinely stuck.  Deterministic: members and reports
  /// are ordered by fiber name.
  std::vector<StuckReport> analyze();

  /// Blocking-discipline lints accumulated so far.  analyze() appends the
  /// charged-hook lint (Machine::hook_charges() != 0) if warranted.
  const std::vector<LintReport>& lints() const { return lints_; }

  /// Human-readable report of the last analyze() plus lints.
  std::string report() const;

  /// Probe-streak threshold for the starvation classification: a fiber
  /// whose current uninterrupted failed-probe streak on one lock meets the
  /// threshold at analyze() time is reported.  Default 256 probes.
  void set_spin_streak_threshold(std::uint64_t probes) {
    spin_streak_threshold_ = probes;
  }

  /// Arm a periodic engine-context watchdog: every `period` it checks
  /// whether the machine has quiesced (live fibers, no scheduled resumes,
  /// every live fiber in a kernel blocking wait) with zero fiber resumes
  /// since the previous tick — a heap reduced to timers that are not
  /// making progress.  On detection it runs analyze(), latches fired(),
  /// and stops re-arming (so a wedged run's heap can drain and run() can
  /// return).  Re-arms otherwise until the last fiber exits.  Choose a
  /// period longer than the longest legitimate timed wait in the workload:
  /// a fiber parked in dq_dequeue_for is indistinguishable from a stuck
  /// one until its timeout fires.
  void arm_watchdog(sim::Time period);
  bool fired() const { return fired_; }

  /// Reports captured by the last analyze() (same vector analyze()
  /// returned; the watchdog path stores its results here).
  const std::vector<StuckReport>& findings() const { return findings_; }

  // --- Introspection (tests) --------------------------------------------------
  std::size_t blocked_now() const { return blocked_.size(); }
  std::uint64_t overwrites(std::uint64_t chan) const;

 private:
  struct WaitState {
    std::uint64_t chan = 0;
    sim::WaitKind kind = sim::WaitKind::kEvent;
  };
  struct ChanState {
    std::vector<sim::Fiber*> posters;  ///< distinct, in first-post order
    std::uint64_t overwrites = 0;
    sim::WaitKind kind = sim::WaitKind::kEvent;  ///< from the last block
  };
  struct SpinState {
    std::uint64_t lock = 0;
    std::uint64_t streak = 0;  ///< failed probes since last acquisition
  };

  std::string fiber_name(sim::Fiber* f) const;
  std::string chan_name(std::uint64_t chan) const;
  void append_charged_hook_lint();
  void watchdog_tick();

  sim::Machine& m_;
  chrys::Kernel* kernel_ = nullptr;

  std::unordered_map<sim::Fiber*, WaitState> blocked_;
  std::unordered_map<std::uint64_t, ChanState> chans_;
  std::unordered_map<std::uint64_t, sim::Fiber*> lock_holder_;
  std::unordered_map<sim::Fiber*, std::unordered_set<std::uint64_t>> held_;
  std::unordered_map<sim::Fiber*, SpinState> spin_;

  std::vector<LintReport> lints_;
  std::vector<StuckReport> findings_;
  std::uint64_t spin_streak_threshold_ = 256;
  bool charged_hook_reported_ = false;

  // Watchdog state.
  sim::Time watchdog_period_ = 0;
  std::uint64_t last_resumes_ = 0;
  bool fired_ = false;
};

}  // namespace bfly::moviola
