#include "lynx/lynx.hpp"

#include <cassert>

namespace bfly::lynx {

namespace {
// Calibrated so a null RPC round trip lands near 2 ms, matching the
// Scott & Cox measurements of Lynx message overhead on the Butterfly-I.
constexpr sim::Time kMarshalCost = 350 * sim::kMicrosecond;
constexpr sim::Time kDispatchCost = 150 * sim::kMicrosecond;
constexpr sim::Time kMoveEndCost = 500 * sim::kMicrosecond;
}  // namespace

Runtime::Runtime(chrys::Kernel& k) : k_(k), m_(k.machine()) {
  done_dq_ = k_.make_dual_queue();
}

Runtime::~Runtime() = default;

std::uint32_t Runtime::spawn(sim::NodeId node, ProcBody body) {
  const auto index = static_cast<std::uint32_t>(procs_.size());
  auto ps = std::make_unique<ProcState>();
  ps->node = node;
  ps->view.reset(new Proc(*this, index, node));
  ps->inbox = k_.make_dual_queue();
  ProcState* p = ps.get();
  procs_.push_back(std::move(ps));
  ++live_bodies_;

  // The body is the process's initial thread.
  auto t0 = std::make_unique<Thread>();
  t0->fn = [p, body] { body(*p->view); };
  p->threads.push_back(std::move(t0));
  p->runnable.push_back(p->threads.back().get());

  if (started_)
    launch(index);
  else
    held_.push_back(index);
  return index;
}

void Runtime::launch(std::uint32_t index) {
  ProcState* p = procs_[index].get();
  k_.create_process(
      p->node,
      [this, p, index] {
        p->wake_event = k_.make_event();
        p->sched_fiber = sim::Fiber::current();
        scheduler_loop(*p);
        k_.dq_enqueue(done_dq_, index);
      },
      "lynx-p" + std::to_string(index));
}

void Runtime::start() {
  if (started_) return;
  started_ = true;
  for (std::uint32_t i : held_) launch(i);
  held_.clear();
}

// --- Scheduler -----------------------------------------------------------

void Runtime::scheduler_loop(ProcState& ps) {
  auto live_threads = [&ps] {
    std::size_t n = 0;
    for (const auto& t : ps.threads)
      if (!t->finished) ++n;
    return n;
  };
  while (true) {
    // Drain the wire.
    std::uint32_t wid = 0;
    while (k_.dq_try_dequeue(ps.inbox, &wid)) {
      Wire w = std::move(wires_[wid]);
      wire_free_.push_back(wid);
      m_.charge(kDispatchCost);
      if (w.kind == Wire::kRequest) {
        Request req;
        req.on = w.to_end;
        req.token = w.token;
        req.data = std::move(w.data);
        if (!ps.acceptors.empty()) {
          Thread* t = ps.acceptors.front();
          ps.acceptors.pop_front();
          t->awaiting_request = false;
          t->pending = std::move(req);
          t->request_ready = true;
          ps.runnable.push_back(t);
        } else {
          ps.backlog.push_back(std::move(req));
        }
      } else {  // kReply
        auto it = tokens_.find(w.token);
        if (it != tokens_.end()) {
          Thread* t = it->second.second;
          tokens_.erase(it);
          t->awaiting_reply = false;
          t->reply_data = std::move(w.data);
          t->reply_ready = true;
          ps.runnable.push_back(t);
          ++calls_completed_;
        }
      }
    }
    if (!ps.runnable.empty()) {
      Thread* t = ps.runnable.front();
      ps.runnable.pop_front();
      dispatch(ps, t);
      continue;
    }
    if (live_threads() == 0) break;  // process terminates with its threads
    ps.waiting = true;
    (void)k_.event_wait(ps.wake_event);
    ps.waiting = false;
  }
}

void Runtime::dispatch(ProcState& ps, Thread* t) {
  m_.charge(m_.config().thread_switch_ns);
  if (t->fiber == nullptr) {
    t->fiber = m_.spawn_parked(ps.node, [this, &ps, t] {
      // A throw that escapes a thread kills the thread, not the process
      // (Chrysalis-style unwind to the outermost handler).
      try {
        t->fn();
      } catch (const chrys::ThrowSignal&) {
        ++faulted_threads_;
      }
      t->finished = true;
      m_.wakeup(ps.sched_fiber);
    });
    by_fiber_[t->fiber] = {&ps, t};
  }
  m_.wakeup(t->fiber);
  m_.park();
  if (t->finished) by_fiber_.erase(t->fiber);
}

void Runtime::back_to_scheduler(ProcState& ps) {
  m_.wakeup(ps.sched_fiber);
  m_.park();
}

Runtime::ProcState& Runtime::state_of_current() {
  auto it = by_fiber_.find(sim::Fiber::current());
  if (it == by_fiber_.end())
    throw sim::SimError("not called from a Lynx thread");
  return *it->second.first;
}

Runtime::Thread* Runtime::current_thread() {
  auto it = by_fiber_.find(sim::Fiber::current());
  return it == by_fiber_.end() ? nullptr : it->second.second;
}

void Runtime::post_wire(std::uint32_t proc, Wire w) {
  ProcState& target = *procs_[proc];
  // Data travels through a buffer on the receiver's node (block transfer).
  if (!w.data.empty()) {
    const sim::PhysAddr buf = m_.alloc(target.node, w.data.size());
    m_.block_write(buf, w.data.data(), w.data.size());
    m_.free(buf, w.data.size());  // modelled transfer; payload rides host-side
  }
  std::uint32_t wid;
  if (!wire_free_.empty()) {
    wid = wire_free_.back();
    wire_free_.pop_back();
    wires_[wid] = std::move(w);
  } else {
    wires_.push_back(std::move(w));
    wid = static_cast<std::uint32_t>(wires_.size() - 1);
  }
  k_.dq_enqueue(target.inbox, wid);
  // Ring the doorbell unconditionally: posting to a non-waiting scheduler
  // just leaves the event pending (checking `waiting` first would race and
  // lose the wakeup).
  if (target.wake_event != chrys::kNoObject)
    k_.event_post(target.wake_event, 0);
}

// --- Links ------------------------------------------------------------------

End Runtime::connect(std::uint32_t a, std::uint32_t b) {
  const auto link = static_cast<std::uint32_t>(end_holder_.size() / 2);
  end_holder_.push_back(a);
  end_holder_.push_back(b);
  link_dead_.push_back(false);
  if (sim::Fiber::current() != nullptr) m_.charge(300 * sim::kMicrosecond);
  return End{2 * link};
}

void Runtime::move_end(End e, std::uint32_t to_process) {
  if (!e.valid() || e.id >= end_holder_.size())
    throw chrys::ThrowSignal{chrys::kThrowBadObject, e.id};
  end_holder_[e.id] = to_process;
  if (sim::Fiber::current() != nullptr) m_.charge(kMoveEndCost);
}

void Runtime::destroy_link(End e) {
  if (!e.valid() || e.id >= end_holder_.size())
    throw chrys::ThrowSignal{chrys::kThrowBadObject, e.id};
  link_dead_[e.id / 2] = true;
}

std::uint32_t Runtime::holder_of(End e) const { return end_holder_[e.id]; }

void Runtime::join() {
  start();
  for (std::uint32_t i = 0; i < live_bodies_; ++i) (void)k_.dq_dequeue(done_dq_);
}

// --- Proc API ------------------------------------------------------------------

void Proc::fork(std::function<void()> fn) {
  Runtime::ProcState& ps = rt_.state_of_current();
  auto t = std::make_unique<Runtime::Thread>();
  t->fn = std::move(fn);
  ps.threads.push_back(std::move(t));
  ps.runnable.push_back(ps.threads.back().get());
  rt_.m_.charge(50 * sim::kMicrosecond);
}

std::vector<std::uint8_t> Proc::call(End e, const void* data, std::size_t n) {
  Runtime& rt = rt_;
  Runtime::ProcState& ps = rt.state_of_current();
  Runtime::Thread* t = rt.current_thread();
  if (!e.valid() || e.id >= rt.end_holder_.size() || rt.link_dead_[e.id / 2])
    throw chrys::ThrowSignal{chrys::kThrowBadObject, e.id};
  if (rt.end_holder_[e.id] != index_)
    throw chrys::ThrowSignal{chrys::kThrowNotOwner, e.id};

  const std::uint32_t dest = rt.end_holder_[e.opposite().id];
  const std::uint64_t token = rt.next_token_++;
  rt.tokens_[token] = {&ps, t};

  rt.m_.charge(kMarshalCost);
  Runtime::Wire w;
  w.kind = Runtime::Wire::kRequest;
  w.to_end = e.opposite();
  w.token = token;
  w.data.assign(static_cast<const std::uint8_t*>(data),
                static_cast<const std::uint8_t*>(data) + n);
  rt.post_wire(dest, std::move(w));

  t->awaiting_reply = true;
  t->reply_ready = false;
  rt.back_to_scheduler(ps);
  assert(t->reply_ready);
  return std::move(t->reply_data);
}

Request Proc::accept() {
  Runtime& rt = rt_;
  Runtime::ProcState& ps = rt.state_of_current();
  Runtime::Thread* t = rt.current_thread();
  rt.m_.charge(kDispatchCost);
  if (!ps.backlog.empty()) {
    Request req = std::move(ps.backlog.front());
    ps.backlog.pop_front();
    return req;
  }
  t->awaiting_request = true;
  t->request_ready = false;
  ps.acceptors.push_back(t);
  rt.back_to_scheduler(ps);
  assert(t->request_ready);
  t->request_ready = false;
  return std::move(t->pending);
}

void Proc::reply(const Request& req, const void* data, std::size_t n) {
  Runtime& rt = rt_;
  auto it = rt.tokens_.find(req.token);
  if (it == rt.tokens_.end())
    throw chrys::ThrowSignal{chrys::kThrowBadObject,
                             static_cast<std::uint32_t>(req.token)};
  const std::uint32_t caller = it->second.first->view->index();
  rt.m_.charge(kMarshalCost);
  Runtime::Wire w;
  w.kind = Runtime::Wire::kReply;
  w.token = req.token;
  w.data.assign(static_cast<const std::uint8_t*>(data),
                static_cast<const std::uint8_t*>(data) + n);
  rt.post_wire(caller, std::move(w));
}

}  // namespace bfly::lynx
