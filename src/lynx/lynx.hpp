// Lynx — the distributed programming language's run-time model (Scott,
// BPR 7 / IEEE TSE '87; Section 3.2 of the paper).
//
// Lynx supports heavyweight processes containing lightweight threads, with
// a remote-procedure-call model of communication between threads.  A
// message dispatcher and thread scheduler inside each process provide the
// performance of asynchronous message passing between heavyweight
// processes while presenting blocking RPC to the programmer.  Connections
// ("links") between processes can be created, destroyed, and moved
// dynamically, giving complete run-time control over the communication
// topology — without compile-time knowledge of communication partners.
//
// This is the run-time library, not the language: bodies are C++ closures,
// requests and replies are byte vectors (use the typed helpers), and links
// are moved with an explicit call rather than by enclosure in a message.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chrysalis/kernel.hpp"

namespace bfly::lynx {

class Runtime;
class Proc;

/// One end of a duplex link.  End 2k and 2k+1 are opposite ends of link k.
struct End {
  std::uint32_t id = 0xffffffffu;
  End opposite() const { return End{id ^ 1u}; }
  bool valid() const { return id != 0xffffffffu; }
  bool operator==(const End&) const = default;
};

/// An incoming RPC request, as seen by the server thread.
struct Request {
  End on;                            ///< the end it arrived through
  std::vector<std::uint8_t> data;
  std::uint64_t token = 0;           ///< reply routing token

  template <typename T>
  T as() const {
    T v{};
    std::memcpy(&v, data.data(), std::min(sizeof(T), data.size()));
    return v;
  }
};

using ProcBody = std::function<void(Proc&)>;

/// A Lynx process's view of itself; valid inside its body and threads.
class Proc {
 public:
  std::uint32_t index() const { return index_; }
  sim::NodeId node() const { return node_; }
  Runtime& runtime() { return rt_; }

  /// Start another lightweight thread in this process.
  void fork(std::function<void()> fn);

  /// Blocking RPC through a link end this process holds: sends `data`,
  /// suspends the calling thread (others keep running), returns the reply.
  std::vector<std::uint8_t> call(End e, const void* data, std::size_t n);
  template <typename T, typename R>
  R call_value(End e, const T& req) {
    const auto bytes = call(e, &req, sizeof(T));
    R r{};
    std::memcpy(&r, bytes.data(), std::min(sizeof(R), bytes.size()));
    return r;
  }

  /// Block until a request arrives on any end this process holds.
  Request accept();
  /// Answer a request.
  void reply(const Request& req, const void* data, std::size_t n);
  template <typename T>
  void reply_value(const Request& req, const T& v) {
    reply(req, &v, sizeof(T));
  }

 private:
  friend class Runtime;
  Proc(Runtime& rt, std::uint32_t index, sim::NodeId node)
      : rt_(rt), index_(index), node_(node) {}

  Runtime& rt_;
  std::uint32_t index_;
  sim::NodeId node_;
};

class Runtime {
 public:
  explicit Runtime(chrys::Kernel& k);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Create a Lynx process on `node`.  Returns its index.  Processes
  /// spawned before start() is called are held until start(), so the
  /// creator can wire up links first; processes spawned afterwards (e.g.
  /// from a running Lynx thread) launch immediately.
  std::uint32_t spawn(sim::NodeId node, ProcBody body);

  /// Launch all held processes.  join() calls this implicitly.
  void start();

  /// Create a fresh link; gives end A to process `a` and end B to `b`.
  End connect(std::uint32_t a, std::uint32_t b);
  /// Move an end to another process (Lynx moves ends by enclosing them in
  /// messages; the cost model is the same).
  void move_end(End e, std::uint32_t to_process);
  /// Destroy a link; outstanding calls on it fail with a throw.
  void destroy_link(End e);
  std::uint32_t holder_of(End e) const;

  /// Wait (from the creating Chrysalis process) for all Lynx processes to
  /// finish their bodies.
  void join();

  std::uint64_t calls_completed() const { return calls_completed_; }
  /// Current simulated time (convenience for timing RPCs in clients).
  sim::Time kernel_now() const { return m_.now(); }

 private:
  friend class Proc;
  struct Thread {
    sim::Fiber* fiber = nullptr;
    std::function<void()> fn;
    bool finished = false;
    // RPC state
    bool awaiting_reply = false;
    bool awaiting_request = false;
    std::vector<std::uint8_t> reply_data;
    bool reply_ready = false;
    Request pending;  // delivered request when awaiting_request
    bool request_ready = false;
  };
  struct ProcState {
    std::unique_ptr<Proc> view;
    sim::NodeId node = 0;
    chrys::Oid wake_event = chrys::kNoObject;
    chrys::Oid inbox = chrys::kNoObject;  // dual queue of wire-message ids
    sim::Fiber* sched_fiber = nullptr;
    std::vector<std::unique_ptr<Thread>> threads;
    std::deque<Thread*> runnable;
    std::deque<Request> backlog;          // requests with no acceptor yet
    std::deque<Thread*> acceptors;        // threads blocked in accept()
    bool waiting = false;
    bool body_done = false;
  };
  struct Wire {  // a message on the wire between processes
    enum Kind { kRequest, kReply } kind = kRequest;
    End to_end;                  // request: destination end
    std::uint64_t token = 0;     // identifies the calling thread
    std::vector<std::uint8_t> data;
  };

  void launch(std::uint32_t index);
  void scheduler_loop(ProcState& ps);
  void dispatch(ProcState& ps, Thread* t);
  void back_to_scheduler(ProcState& ps);
  void post_wire(std::uint32_t proc, Wire w);
  ProcState& state_of_current();
  Thread* current_thread();
  std::uint64_t token_for(std::uint32_t proc, Thread* t);

  chrys::Kernel& k_;
  sim::Machine& m_;
  std::vector<std::unique_ptr<ProcState>> procs_;
  std::unordered_map<sim::Fiber*, std::pair<ProcState*, Thread*>> by_fiber_;
  std::vector<std::uint32_t> end_holder_;  // end id -> process index
  std::vector<bool> link_dead_;
  std::deque<Wire> wires_;
  std::vector<std::uint32_t> wire_free_;
  std::unordered_map<std::uint64_t, std::pair<ProcState*, Thread*>> tokens_;
  std::uint64_t next_token_ = 1;
  std::uint64_t calls_completed_ = 0;
  chrys::Oid done_dq_ = chrys::kNoObject;
  std::uint32_t live_bodies_ = 0;
  bool started_ = false;
  std::vector<std::uint32_t> held_;  // spawned before start()
  std::uint32_t faulted_threads_ = 0;
};

}  // namespace bfly::lynx
