#include "apps/connectionist.hpp"

#include <cmath>
#include <cstring>

#include "sim/rng.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

namespace {

struct Network {
  std::vector<std::uint32_t> src;  // [unit * fanin + c] -> source unit
  std::vector<float> weight;       // same indexing
  std::vector<float> act0;         // initial activations
};

Network build_network(const ConnectionistConfig& cfg) {
  sim::Rng rng(cfg.seed);
  Network net;
  net.src.resize(static_cast<std::size_t>(cfg.units) * cfg.fanin);
  net.weight.resize(net.src.size());
  net.act0.resize(cfg.units);
  for (std::uint32_t u = 0; u < cfg.units; ++u) {
    for (std::uint32_t c = 0; c < cfg.fanin; ++c) {
      net.src[static_cast<std::size_t>(u) * cfg.fanin + c] =
          static_cast<std::uint32_t>(rng.below(cfg.units));
      net.weight[static_cast<std::size_t>(u) * cfg.fanin + c] =
          static_cast<float>(rng.uniform() * 2.0 - 1.0) /
          static_cast<float>(cfg.fanin);
    }
    net.act0[u] = static_cast<float>(rng.uniform());
  }
  return net;
}

float squash(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

std::vector<float> connectionist_reference(const ConnectionistConfig& cfg) {
  const Network net = build_network(cfg);
  std::vector<float> act = net.act0, next(cfg.units);
  for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
    for (std::uint32_t u = 0; u < cfg.units; ++u) {
      float s = 0;
      for (std::uint32_t c = 0; c < cfg.fanin; ++c) {
        const std::size_t e = static_cast<std::size_t>(u) * cfg.fanin + c;
        s += net.weight[e] * act[net.src[e]];
      }
      next[u] = squash(s);
    }
    act.swap(next);
  }
  return act;
}

ConnectionistResult connectionist(sim::Machine& m,
                                  const ConnectionistConfig& cfg) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = cfg.processors;
  us::UniformSystem us(k, ucfg);
  const std::uint32_t procs = us.processors();
  const Network net = build_network(cfg);

  ConnectionistResult result;
  const std::uint32_t n = cfg.units;

  us.run_main([&] {
    // The activation vector and the connection tables live in shared
    // memory; weights/topology are scattered by unit chunk so each worker's
    // own units are (mostly) in nearby memory.
    const std::uint32_t chunk = (n + procs - 1) / procs;
    // Double-buffered activations (the reference's act/next swap): within a
    // round every worker reads the whole current vector while writers fill
    // the other buffer, so same-round reads and writes never touch the same
    // words.  A single buffer would be a data race masked only by the host
    // mirror — bfly::analyze flags it.
    std::vector<std::vector<sim::PhysAddr>> act_bufs = {
        us.scatter_rows(procs, chunk * 4), us.scatter_rows(procs, chunk * 4)};
    std::vector<sim::PhysAddr> wt_chunks =
        us.scatter_rows(procs, chunk * cfg.fanin * 8);
    result.network_bytes =
        static_cast<std::size_t>(procs) * chunk * (4 + cfg.fanin * 8);
    for (std::uint32_t w = 0; w < procs; ++w) {
      const std::uint32_t lo = w * chunk;
      const std::uint32_t count = lo < n ? std::min(chunk, n - lo) : 0;
      if (count > 0)
        m.poke_bytes(act_bufs[0][w], net.act0.data() + lo, count * 4);
    }

    std::vector<float> host_act = net.act0;  // mirrors simulated memory
    // Per-worker local staging buffers (timing for the block copies; the
    // values themselves are mirrored in host_act).
    std::vector<std::vector<std::uint8_t>> stage(
        procs, std::vector<std::uint8_t>(
                   std::max<std::size_t>(chunk * 4,
                                         static_cast<std::size_t>(chunk) *
                                             cfg.fanin * 8)));
    const sim::Time t0 = m.now();
    for (std::uint32_t r = 0; r < cfg.rounds; ++r) {
      const std::vector<sim::PhysAddr>& cur = act_bufs[r % 2];
      const std::vector<sim::PhysAddr>& nxt = act_bufs[(r + 1) % 2];
      std::vector<float> next(n);
      us.for_all(0, procs, [&](us::TaskCtx& c) {
        const std::uint32_t w = c.arg;
        const std::uint32_t lo = w * chunk;
        const std::uint32_t count = lo < n ? std::min(chunk, n - lo) : 0;
        if (count == 0) return;
        // Pull the whole activation vector local (the dense-gather idiom),
        // and this chunk's weight table.
        std::uint8_t* buf = stage[c.worker].data();
        for (std::uint32_t ww = 0; ww < procs; ++ww) {
          const std::uint32_t wlo = ww * chunk;
          const std::uint32_t wcount = wlo < n ? std::min(chunk, n - wlo) : 0;
          if (wcount > 0) c.us.copy_to_local(buf, cur[ww], wcount * 4);
        }
        c.us.copy_to_local(buf, wt_chunks[w], count * cfg.fanin * 8);
        // Weighted sums: 2 flops per connection plus the squash.
        c.m.flops(static_cast<std::uint64_t>(count) * cfg.fanin * 2 + count);
        for (std::uint32_t u = lo; u < lo + count; ++u) {
          float s = 0;
          for (std::uint32_t cc = 0; cc < cfg.fanin; ++cc) {
            const std::size_t e = static_cast<std::size_t>(u) * cfg.fanin + cc;
            s += net.weight[e] * host_act[net.src[e]];
          }
          next[u] = squash(s);
        }
        // Write the chunk's new activations back into the other buffer.
        c.us.copy_from_local(nxt[w], next.data() + lo, count * 4);
      });
      host_act = next;
    }
    result.elapsed = m.now() - t0;
    result.activations = host_act;
  });
  return result;
}

}  // namespace bfly::apps
