#include "apps/pentominoes.hpp"

#include <algorithm>
#include <array>

#include "us/uniform_system.hpp"

namespace bfly::apps {

namespace {

// The 12 pentominoes as base cell sets (letter, 5 (x,y) cells).
struct Shape {
  char letter;
  std::array<std::pair<int, int>, 5> cells;
};
constexpr Shape kShapes[] = {
    {'F', {{{1, 0}, {2, 0}, {0, 1}, {1, 1}, {1, 2}}}},
    {'I', {{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}}}},
    {'L', {{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 3}}}},
    {'N', {{{1, 0}, {1, 1}, {0, 2}, {1, 2}, {0, 3}}}},
    {'P', {{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}}}},
    {'T', {{{0, 0}, {1, 0}, {2, 0}, {1, 1}, {1, 2}}}},
    {'U', {{{0, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}}},
    {'V', {{{0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}}}},
    {'W', {{{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}}}},
    {'X', {{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}}}},
    {'Y', {{{1, 0}, {0, 1}, {1, 1}, {1, 2}, {1, 3}}}},
    {'Z', {{{0, 0}, {1, 0}, {1, 1}, {1, 2}, {2, 2}}}},
};

using Cells = std::vector<std::pair<int, int>>;

Cells normalize(Cells c) {
  int mx = 1000, my = 1000;
  for (auto& [x, y] : c) {
    mx = std::min(mx, x);
    my = std::min(my, y);
  }
  for (auto& [x, y] : c) {
    x -= mx;
    y -= my;
  }
  std::sort(c.begin(), c.end());
  return c;
}

/// All distinct orientations (rotations + reflections) of a shape.
std::vector<Cells> orientations(const Shape& s) {
  std::vector<Cells> out;
  Cells cur(s.cells.begin(), s.cells.end());
  for (int refl = 0; refl < 2; ++refl) {
    for (int rot = 0; rot < 4; ++rot) {
      Cells n = normalize(cur);
      if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
      for (auto& [x, y] : cur) std::tie(x, y) = std::pair{-y, x};  // rotate
    }
    for (auto& [x, y] : cur) x = -x;  // reflect
  }
  return out;
}

struct Placement {
  std::uint32_t piece;   // index into the chosen piece list
  std::uint64_t mask;    // board cells covered
};

struct Problem {
  std::uint32_t w, h, npieces;
  std::vector<Placement> placements;
  // placements_at[c]: placements whose lowest set cell is c (for the
  // "fill the first empty cell" strategy).
  std::vector<std::vector<std::uint32_t>> placements_at;

  explicit Problem(const PentominoConfig& cfg) {
    w = cfg.width;
    h = cfg.height;
    npieces = static_cast<std::uint32_t>(cfg.pieces.size());
    placements_at.resize(static_cast<std::size_t>(w) * h);
    for (std::uint32_t pi = 0; pi < npieces; ++pi) {
      const auto* shape =
          std::find_if(std::begin(kShapes), std::end(kShapes),
                       [&](const Shape& s) { return s.letter == cfg.pieces[pi]; });
      for (const Cells& o : orientations(*shape)) {
        int maxx = 0, maxy = 0;
        for (auto& [x, y] : o) {
          maxx = std::max(maxx, x);
          maxy = std::max(maxy, y);
        }
        for (std::uint32_t oy = 0; oy + maxy < h; ++oy) {
          for (std::uint32_t ox = 0; ox + maxx < w; ++ox) {
            std::uint64_t mask = 0;
            for (auto& [x, y] : o)
              mask |= 1ull << ((oy + y) * w + (ox + x));
            const auto idx = static_cast<std::uint32_t>(placements.size());
            placements.push_back(Placement{pi, mask});
            // Lowest covered cell.
            placements_at[static_cast<std::uint32_t>(
                              __builtin_ctzll(mask))]
                .push_back(idx);
          }
        }
      }
    }
  }

  std::uint64_t count(std::uint64_t board, std::uint32_t used,
                      std::uint64_t* nodes) const {
    const std::uint64_t full = (w * h >= 64) ? ~0ull
                                             : ((1ull << (w * h)) - 1);
    if (board == full) return used == (1u << npieces) - 1 ? 1 : 0;
    const auto cell =
        static_cast<std::uint32_t>(__builtin_ctzll(~board & full));
    std::uint64_t total = 0;
    for (std::uint32_t idx : placements_at[cell]) {
      const Placement& p = placements[idx];
      ++*nodes;
      if ((used >> p.piece) & 1) continue;
      if (p.mask & board) continue;
      total += count(board | p.mask, used | (1u << p.piece), nodes);
    }
    return total;
  }
};

}  // namespace

std::uint64_t pentomino_reference(const PentominoConfig& cfg) {
  Problem prob(cfg);
  std::uint64_t nodes = 0;
  return prob.count(0, 0, &nodes);
}

PentominoResult pentominoes(sim::Machine& m, const PentominoConfig& cfg,
                            std::uint32_t processors) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);

  Problem prob(cfg);
  PentominoResult result;
  us.run_main([&] {
    sim::PhysAddr total = us.alloc_on(0, 8);
    m.poke<std::uint32_t>(total, 0);
    const sim::Time t0 = m.now();
    // One task per first placement at cell 0.
    const auto& first = prob.placements_at[0];
    us.for_all(0, static_cast<std::uint32_t>(first.size()),
               [&](us::TaskCtx& c) {
                 const Placement& p = prob.placements[first[c.arg]];
                 std::uint64_t nodes = 0;
                 const std::uint64_t found =
                     prob.count(p.mask, 1u << p.piece, &nodes);
                 c.m.compute(nodes * 8);  // placement tests
                 result.nodes += nodes;
                 if (found)
                   c.us.atomic_add(total, static_cast<std::uint32_t>(found));
               });
    result.elapsed = m.now() - t0;
    result.solutions = m.peek<std::uint32_t>(total);
  });
  return result;
}

}  // namespace bfly::apps
