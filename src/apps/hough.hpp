// Hough transform line finding — Olson, BPR 10 (Sections 3.1 and 4.1).
//
// The locality lesson of the paper is quantified on this application: on 64
// processors, copying blocks of image data to local memory (and
// accumulating votes locally) improved performance by 42%, and local lookup
// tables for the transcendental functions improved it by a further 22%.
//
// Three variants of the same computation:
//   kNaive       — image pixels read word-at-a-time from shared memory,
//                  sin/cos read from a shared table, every vote a remote
//                  read-modify-write on the shared accumulator;
//   kLocalCopy   — image bands block-copied to local memory, votes
//                  accumulated in a worker-local array and merged at the
//                  end under per-angle locks (trig still shared);
//   kLocalTables — kLocalCopy plus per-worker local copies of the trig
//                  tables.
//
// All variants produce the same accumulator contents; tests verify that the
// planted lines are the top-voted (theta, rho) cells.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

enum class HoughVariant { kNaive, kLocalCopy, kLocalTables };

struct HoughConfig {
  std::uint32_t width = 256;
  std::uint32_t height = 256;
  std::uint32_t angles = 180;
  std::uint32_t processors = 64;   ///< the paper's measurement point
  std::uint32_t lines = 4;         ///< planted lines
  double line_fraction = 1.0;      ///< fraction of each line actually drawn
  std::uint32_t noise = 300;       ///< random noise pixels
  std::uint64_t seed = 11;
  HoughVariant variant = HoughVariant::kNaive;
};

struct HoughResult {
  sim::Time elapsed = 0;
  std::vector<std::uint32_t> accumulator;  ///< angles x rho_bins
  std::uint32_t rho_bins = 0;
  std::uint64_t remote_refs = 0;
  sim::Time queue_ns = 0;
};

/// Deterministic test image: `lines` straight lines plus salt noise.
/// Returns width*height bytes (0 = background, 1 = edge pixel).
std::vector<std::uint8_t> make_edge_image(const HoughConfig& cfg);

/// Run the transform on a simulated machine.
HoughResult hough(sim::Machine& m, const HoughConfig& cfg);

/// The (angle, rho) cells of the planted lines, for verification.
/// Returns true if every planted line has a top-K accumulator peak.
bool peaks_match_planted_lines(const HoughConfig& cfg, const HoughResult& r);

}  // namespace bfly::apps
