// Computational geometry from the DARPA benchmark (Section 3.1): planar
// convex hull by parallel quickhull over the Uniform System work queue.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

struct Point {
  double x = 0, y = 0;
  bool operator==(const Point&) const = default;
};

/// Deterministic point cloud (uniform in a disk, so the hull is small
/// relative to n).
std::vector<Point> random_points(std::uint32_t n, std::uint64_t seed);

struct HullResult {
  sim::Time elapsed = 0;
  std::vector<Point> hull;  ///< counter-clockwise, starting at leftmost
};

/// Host-side reference (Andrew's monotone chain).
std::vector<Point> hull_reference(const std::vector<Point>& pts);

/// Parallel quickhull: tasks split point sets above/below dividing lines;
/// sub-problems recurse through the work queue.
HullResult convex_hull(sim::Machine& m, const std::vector<Point>& pts,
                       std::uint32_t processors);

}  // namespace bfly::apps
