// Pentominoes — one of the pedagogical class projects (Section 3.1:
// "graph transitive closure, 8-queens, and the game of pentominoes").
//
// Exact-cover tiling: place a chosen set of pentominoes to tile a
// rectangle exactly once each.  The parallel version fans the placements
// of the first piece out over Uniform System tasks, each counting the
// completions of its subtree — the same work-queue backtracking shape as
// 8-queens and subgraph isomorphism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

struct PentominoConfig {
  std::uint32_t width = 5;
  std::uint32_t height = 5;
  /// Which pentominoes to use, by conventional letter (each exactly once).
  /// width*height must equal 5 * pieces.size().
  std::string pieces = "FILTY";
};

struct PentominoResult {
  sim::Time elapsed = 0;
  std::uint64_t solutions = 0;
  std::uint64_t nodes = 0;  ///< placements examined
};

/// Host-side serial count (the reference).
std::uint64_t pentomino_reference(const PentominoConfig& cfg);

/// Parallel count on the simulated machine.
PentominoResult pentominoes(sim::Machine& m, const PentominoConfig& cfg,
                            std::uint32_t processors);

}  // namespace bfly::apps
