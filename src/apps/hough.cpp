#include "apps/hough.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sim/rng.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::vector<std::uint8_t> make_edge_image(const HoughConfig& cfg) {
  std::vector<std::uint8_t> img(
      static_cast<std::size_t>(cfg.width) * cfg.height, 0);
  sim::Rng rng(cfg.seed);
  for (std::uint32_t l = 0; l < cfg.lines; ++l) {
    const double theta = kPi * (0.2 + 0.5 * l / std::max(1u, cfg.lines));
    const double rho = 0.25 * cfg.width + 12.0 * l;
    const double c = std::cos(theta), s = std::sin(theta);
    // Draw only the middle `line_fraction` of the segment, so edge density
    // (and with it the vote workload) is controllable.
    const double lo = 0.5 - cfg.line_fraction / 2;
    const double hi = 0.5 + cfg.line_fraction / 2;
    if (std::fabs(s) > std::fabs(c)) {
      const auto x0 = static_cast<std::uint32_t>(lo * cfg.width);
      const auto x1 = static_cast<std::uint32_t>(hi * cfg.width);
      for (std::uint32_t x = x0; x < x1; ++x) {
        const double y = (rho - x * c) / s;
        if (y >= 0 && y < cfg.height)
          img[static_cast<std::size_t>(y) * cfg.width + x] = 1;
      }
    } else {
      const auto y0 = static_cast<std::uint32_t>(lo * cfg.height);
      const auto y1 = static_cast<std::uint32_t>(hi * cfg.height);
      for (std::uint32_t y = y0; y < y1; ++y) {
        const double x = (rho - y * s) / c;
        if (x >= 0 && x < cfg.width)
          img[static_cast<std::size_t>(y) * cfg.width +
              static_cast<std::uint32_t>(x)] = 1;
      }
    }
  }
  for (std::uint32_t i = 0; i < cfg.noise; ++i) {
    const auto x = rng.below(cfg.width);
    const auto y = rng.below(cfg.height);
    img[y * cfg.width + x] = 1;
  }
  return img;
}

HoughResult hough(sim::Machine& m, const HoughConfig& cfg) {
  const std::uint32_t w = cfg.width, h = cfg.height, na = cfg.angles;
  const double rho_max = std::hypot(w, h);
  const std::uint32_t nr = static_cast<std::uint32_t>(rho_max) + 1;
  const bool naive = cfg.variant == HoughVariant::kNaive;
  const bool local_trig = cfg.variant == HoughVariant::kLocalTables;

  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = cfg.processors;
  us::UniformSystem us(k, ucfg);
  const std::uint32_t procs = us.processors();

  const std::vector<std::uint8_t> img = make_edge_image(cfg);

  HoughResult result;
  result.rho_bins = nr;
  result.accumulator.assign(static_cast<std::size_t>(na) * nr, 0);

  us.run_main([&] {
    // Image rows and accumulator rows (one per angle) scattered across the
    // memories; the shared trig table sits on node 0.  The three variants
    // run the identical voting computation — they differ only in where the
    // image bytes and the trig table are read from, which is the paper's
    // locality lesson in its purest form.
    std::vector<sim::PhysAddr> img_rows = us.scatter_rows(h, w);
    for (std::uint32_t y = 0; y < h; ++y)
      m.poke_bytes(img_rows[y], &img[static_cast<std::size_t>(y) * w], w);

    std::vector<sim::PhysAddr> acc_rows = us.scatter_rows(na, nr * 4);
    for (std::uint32_t a = 0; a < na; ++a) {
      std::vector<std::uint32_t> zero(nr, 0);
      m.poke_bytes(acc_rows[a], zero.data(), nr * 4);
    }
    const sim::PhysAddr trig = us.alloc_on(0, na * 8);  // cos + sin floats
    std::vector<float> trig_host(2 * na);
    for (std::uint32_t a = 0; a < na; ++a) {
      const double theta = kPi * a / na;
      trig_host[2 * a] = static_cast<float>(std::cos(theta));
      trig_host[2 * a + 1] = static_cast<float>(std::sin(theta));
    }

    // kLocalTables: each worker keeps a private copy of the trig table in
    // its node's memory, filled on first touch.
    std::vector<sim::PhysAddr> trig_copy(procs);
    std::vector<bool> trig_cached(procs, false);
    for (std::uint32_t p = 0; p < procs; ++p)
      trig_copy[p] = m.alloc(p % m.nodes(), na * 8);

    const sim::Time t0 = m.now();
    m.stats().reset();

    // One task per image row.
    us.for_all(0, h, [&](us::TaskCtx& c) {
      const std::uint32_t y = c.arg;
      std::vector<std::uint8_t> row(w);
      if (naive) {
        // Word-at-a-time remote reads: one reference per pixel.
        m.access_words(img_rows[y], w);
        m.peek_bytes(row.data(), img_rows[y], w);
      } else {
        // The 42% idiom: block-copy the row into local memory first.
        us.copy_to_local(row.data(), img_rows[y], w);
      }
      m.compute(2 * w);  // edge scan
      std::vector<std::uint32_t> edges;
      for (std::uint32_t x = 0; x < w; ++x)
        if (row[x]) edges.push_back(x);
      if (edges.empty()) return;

      // Trig lookups: cos and sin, once per angle for this row's batch of
      // edge pixels.
      if (local_trig) {
        if (!trig_cached[c.worker]) {
          std::vector<std::uint8_t> tmp(na * 8);
          us.copy_to_local(tmp.data(), trig, na * 8);
          us.copy_from_local(trig_copy[c.worker], tmp.data(), na * 8);
          trig_cached[c.worker] = true;
        }
        m.access_words(trig_copy[c.worker], 2 * na);
      } else {
        m.access_words(trig, 2 * na);  // shared table on node 0
      }
      // Fixed-point multiply-accumulate per (angle, edge pixel).
      m.compute(3 * na * static_cast<std::uint64_t>(edges.size()));

      // Voting: an atomic add on the shared accumulator per (angle, pixel)
      // — identical (and identically remote) in every variant.
      for (std::uint32_t a = 0; a < na; ++a) {
        for (std::uint32_t x : edges) {
          const double rho =
              x * trig_host[2 * a] + y * trig_host[2 * a + 1];
          if (rho < 0 || rho >= rho_max) continue;
          const auto bin = static_cast<std::uint32_t>(rho);
          m.fetch_add_u32(acc_rows[a].plus(4 * bin), 1);
        }
      }
    });

    result.elapsed = m.now() - t0;
    for (std::uint32_t a = 0; a < na; ++a)
      m.peek_bytes(&result.accumulator[static_cast<std::size_t>(a) * nr],
                   acc_rows[a], nr * 4);
  });

  for (const auto& s : m.stats().node) {
    result.remote_refs += s.remote_refs;
    result.queue_ns += s.queue_ns;
  }
  return result;
}

bool peaks_match_planted_lines(const HoughConfig& cfg, const HoughResult& r) {
  const std::uint32_t na = cfg.angles, nr = r.rho_bins;
  double sum = 0;
  std::uint64_t nz = 0;
  for (std::uint32_t v : r.accumulator) {
    if (v) {
      sum += v;
      ++nz;
    }
  }
  if (nz == 0) return false;
  const double mean = sum / static_cast<double>(nz);
  for (std::uint32_t l = 0; l < cfg.lines; ++l) {
    const double theta = kPi * (0.2 + 0.5 * l / std::max(1u, cfg.lines));
    const double rho = 0.25 * cfg.width + 12.0 * l;
    const auto a = static_cast<std::uint32_t>(theta / kPi * na) % na;
    bool found = false;
    for (int da = -1; da <= 1 && !found; ++da) {
      for (int dr = -2; dr <= 2 && !found; ++dr) {
        const int aa = static_cast<int>(a) + da;
        const int rr = static_cast<int>(rho) + dr;
        if (aa < 0 || aa >= static_cast<int>(na) || rr < 0 ||
            rr >= static_cast<int>(nr))
          continue;
        const std::uint32_t v =
            r.accumulator[static_cast<std::size_t>(aa) * nr + rr];
        if (v > 4 * mean) found = true;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace bfly::apps
