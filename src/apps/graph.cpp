#include "apps/graph.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "sim/rng.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

void Graph::add_edge(std::uint32_t a, std::uint32_t b) {
  if (a == b) return;
  adj[a].push_back(b);
  adj[b].push_back(a);
}

Graph Graph::random(std::uint32_t n, std::uint32_t avg_degree,
                    std::uint64_t seed) {
  Graph g;
  g.n = n;
  g.adj.resize(n);
  sim::Rng rng(seed);
  const std::uint64_t edges = static_cast<std::uint64_t>(n) * avg_degree / 2;
  for (std::uint64_t e = 0; e < edges; ++e)
    g.add_edge(static_cast<std::uint32_t>(rng.below(n)),
               static_cast<std::uint32_t>(rng.below(n)));
  return g;
}

Graph Graph::cliques(std::uint32_t count, std::uint32_t size) {
  Graph g;
  g.n = count * size;
  g.adj.resize(g.n);
  for (std::uint32_t c = 0; c < count; ++c)
    for (std::uint32_t i = 0; i < size; ++i)
      for (std::uint32_t j = i + 1; j < size; ++j)
        g.add_edge(c * size + i, c * size + j);
  return g;
}

// --- Connected components ---------------------------------------------------

std::vector<std::uint32_t> cc_reference(const Graph& g) {
  std::vector<std::uint32_t> label(g.n);
  std::iota(label.begin(), label.end(), 0u);
  // Union by min-label until fixpoint (matches the parallel algorithm's
  // final labeling: min vertex id in the component).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t v = 0; v < g.n; ++v)
      for (std::uint32_t u : g.adj[v])
        if (label[u] < label[v]) {
          label[v] = label[u];
          changed = true;
        }
  }
  return label;
}

GraphRunResult connected_components(sim::Machine& m, const Graph& g,
                                    std::uint32_t processors) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);
  const std::uint32_t procs = us.processors();

  GraphRunResult result;
  us.run_main([&] {
    // Labels in shared memory, one word per vertex, scattered by chunks.
    constexpr std::uint32_t kChunk = 64;
    const std::uint32_t chunks = (g.n + kChunk - 1) / kChunk;
    std::vector<sim::PhysAddr> lab = us.scatter_rows(chunks, kChunk * 4);
    // Chaotic relaxation: tasks in the same round read neighbour labels
    // while other tasks overwrite them, deliberately unsynchronized.  The
    // label words only ever move monotonically down (towards the component
    // minimum) and the outer loop re-runs until a fixpoint, so any stale
    // read is repaired on a later pass.  Named so race scans can apply a
    // documented suppression instead of flagging the algorithm.
    for (std::size_t ci = 0; ci < lab.size(); ++ci)
      m.label_memory(lab[ci], kChunk * 4, "cc.labels");
    auto label_addr = [&](std::uint32_t v) {
      return lab[v / kChunk].plus(4 * (v % kChunk));
    };
    for (std::uint32_t v = 0; v < g.n; ++v)
      m.poke<std::uint32_t>(label_addr(v), v);
    sim::PhysAddr changed = us.alloc_on(0, 4);

    const sim::Time t0 = m.now();
    const std::uint32_t span = std::max(1u, (g.n + procs - 1) / procs);
    const std::uint32_t tasks = (g.n + span - 1) / span;
    while (true) {
      m.poke<std::uint32_t>(changed, 0);
      us.for_all(0, tasks, [&, span](us::TaskCtx& c) {
        const std::uint32_t lo = c.arg * span;
        const std::uint32_t hi = std::min(lo + span, g.n);
        bool any = false;
        for (std::uint32_t v = lo; v < hi; ++v) {
          std::uint32_t best = m.read<std::uint32_t>(label_addr(v));
          // One remote read per neighbour.
          for (std::uint32_t u : g.adj[v]) {
            const std::uint32_t lu = m.read<std::uint32_t>(label_addr(u));
            c.m.compute(2);
            if (lu < best) best = lu;
          }
          const std::uint32_t lv = m.read<std::uint32_t>(label_addr(v));
          if (best < lv) {
            m.write<std::uint32_t>(label_addr(v), best);
            any = true;
          }
        }
        if (any) c.us.atomic_add(changed, 1);
      });
      if (m.peek<std::uint32_t>(changed) == 0) break;
    }
    result.elapsed = m.now() - t0;
    result.labels.resize(g.n);
    for (std::uint32_t v = 0; v < g.n; ++v)
      result.labels[v] = m.peek<std::uint32_t>(label_addr(v));
  });
  return result;
}

// --- Transitive closure -------------------------------------------------------

std::uint64_t closure_reference(const Graph& g) {
  const std::uint32_t n = g.n;
  const std::uint32_t words = (n + 63) / 64;
  std::vector<std::uint64_t> reach(static_cast<std::size_t>(n) * words, 0);
  auto set = [&](std::uint32_t i, std::uint32_t j) {
    reach[static_cast<std::size_t>(i) * words + j / 64] |= 1ull << (j % 64);
  };
  auto get = [&](std::uint32_t i, std::uint32_t j) {
    return (reach[static_cast<std::size_t>(i) * words + j / 64] >>
            (j % 64)) & 1ull;
  };
  for (std::uint32_t v = 0; v < n; ++v) {
    set(v, v);
    for (std::uint32_t u : g.adj[v]) set(v, u);
  }
  for (std::uint32_t kk = 0; kk < n; ++kk)
    for (std::uint32_t i = 0; i < n; ++i)
      if (get(i, kk))
        for (std::uint32_t w = 0; w < words; ++w)
          reach[static_cast<std::size_t>(i) * words + w] |=
              reach[static_cast<std::size_t>(kk) * words + w];
  std::uint64_t pairs = 0;
  for (std::uint64_t w : reach) pairs += static_cast<std::uint64_t>(__builtin_popcountll(w));
  return pairs;
}

GraphRunResult transitive_closure(sim::Machine& m, const Graph& g,
                                  std::uint32_t processors) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);
  const std::uint32_t procs = us.processors();
  const std::uint32_t n = g.n;
  const std::uint32_t words = (n + 63) / 64;

  GraphRunResult result;
  us.run_main([&] {
    std::vector<sim::PhysAddr> rows = us.scatter_rows(n, words * 8);
    std::vector<std::uint64_t> row(words);
    for (std::uint32_t v = 0; v < n; ++v) {
      std::fill(row.begin(), row.end(), 0);
      row[v / 64] |= 1ull << (v % 64);
      for (std::uint32_t u : g.adj[v]) row[u / 64] |= 1ull << (u % 64);
      m.poke_bytes(rows[v], row.data(), words * 8);
    }
    std::vector<std::vector<std::uint64_t>> scratch(
        procs, std::vector<std::uint64_t>(2 * words));

    const sim::Time t0 = m.now();
    const std::uint32_t span = std::max(1u, (n + procs - 1) / procs);
    const std::uint32_t tasks = (n + span - 1) / span;
    for (std::uint32_t kk = 0; kk < n; ++kk) {
      us.for_all(0, tasks, [&, kk, span](us::TaskCtx& c) {
        auto& buf = scratch[c.worker];
        std::uint64_t* krow = buf.data();
        std::uint64_t* irow = buf.data() + words;
        c.us.copy_to_local(krow, rows[kk], words * 8);
        const std::uint32_t lo = c.arg * span;
        const std::uint32_t hi = std::min(lo + span, n);
        for (std::uint32_t i = lo; i < hi; ++i) {
          if (i == kk) continue;
          c.us.copy_to_local(irow, rows[i], words * 8);
          if ((irow[kk / 64] >> (kk % 64)) & 1ull) {
            bool grew = false;
            for (std::uint32_t w = 0; w < words; ++w) {
              const std::uint64_t nv = irow[w] | krow[w];
              if (nv != irow[w]) grew = true;
              irow[w] = nv;
            }
            c.m.compute(words);
            if (grew) c.us.copy_from_local(rows[i], irow, words * 8);
          }
        }
      });
    }
    result.elapsed = m.now() - t0;
    std::uint64_t pairs = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      m.peek_bytes(row.data(), rows[v], words * 8);
      for (std::uint64_t w : row)
        pairs += static_cast<std::uint64_t>(__builtin_popcountll(w));
    }
    result.value = pairs;
  });
  return result;
}

// --- Subgraph isomorphism --------------------------------------------------------

namespace {

bool pattern_edge(const Graph& p, std::uint32_t a, std::uint32_t b) {
  return std::find(p.adj[a].begin(), p.adj[a].end(), b) != p.adj[a].end();
}

// Count completions of a partial injective mapping (pattern vertex `depth`
// onward), node-induced semantics.
std::uint64_t count_from(const Graph& pat, const Graph& host,
                         std::vector<std::uint32_t>& map,
                         std::uint32_t depth, std::uint64_t* steps) {
  if (depth == pat.n) return 1;
  std::uint64_t total = 0;
  for (std::uint32_t cand = 0; cand < host.n; ++cand) {
    ++*steps;
    bool ok = true;
    for (std::uint32_t prev = 0; prev < depth && ok; ++prev) {
      if (map[prev] == cand) ok = false;
      if (ok) {
        const bool pe = pattern_edge(pat, prev, depth);
        const bool he = pattern_edge(host, map[prev], cand);
        if (pe != he) ok = false;  // induced: edges must match exactly
      }
    }
    if (!ok) continue;
    map[depth] = cand;
    total += count_from(pat, host, map, depth + 1, steps);
  }
  return total;
}

}  // namespace

std::uint64_t iso_reference(const Graph& pattern, const Graph& host) {
  std::vector<std::uint32_t> map(pattern.n);
  std::uint64_t steps = 0;
  return count_from(pattern, host, map, 0, &steps);
}

GraphRunResult subgraph_isomorphism(sim::Machine& m, const Graph& pattern,
                                    const Graph& host,
                                    std::uint32_t processors) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);

  GraphRunResult result;
  us.run_main([&] {
    sim::PhysAddr matches = us.alloc_on(0, 8);
    m.poke<std::uint32_t>(matches, 0);
    const sim::Time t0 = m.now();
    // One task per first-level assignment; each explores its subtree.
    us.for_all(0, host.n, [&](us::TaskCtx& c) {
      std::vector<std::uint32_t> map(pattern.n);
      map[0] = c.arg;
      std::uint64_t steps = 0;
      const std::uint64_t found =
          pattern.n == 0 ? 0 : count_from(pattern, host, map, 1, &steps);
      // Each examined candidate costs a handful of (remote) adjacency
      // probes plus compare work.
      c.m.compute(steps * 4);
      m.access_words(sim::PhysAddr{c.node, 0}, static_cast<std::uint32_t>(
                                                   std::min<std::uint64_t>(
                                                       steps, 100000))) ;
      if (found > 0)
        c.us.atomic_add(matches, static_cast<std::uint32_t>(found));
    });
    result.elapsed = m.now() - t0;
    result.value = m.peek<std::uint32_t>(matches);
  });
  return result;
}

}  // namespace bfly::apps
