#include "apps/alphabeta.hpp"

#include <algorithm>

#include "chrysalis/spinlock.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint32_t move) {
  h ^= move + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

int leaf_value(std::uint64_t path_hash) {
  return static_cast<int>(path_hash % 201) - 100;
}

struct Searcher {
  const GameConfig& cfg;
  std::uint64_t nodes = 0;

  int negamax(std::uint64_t path, std::uint32_t depth, int alpha, int beta) {
    ++nodes;
    if (depth == 0) return leaf_value(path);
    // Static move ordering by child hash (deterministic, imperfect — so
    // alpha-beta has real work to do).
    int best = -1000;
    for (std::uint32_t mv = 0; mv < cfg.branching; ++mv) {
      const int v = -negamax(mix(path, mv), depth - 1, -beta, -alpha);
      best = std::max(best, v);
      alpha = std::max(alpha, v);
      if (alpha >= beta) break;  // cutoff
    }
    return best;
  }
};

}  // namespace

SearchResult alphabeta_reference(const GameConfig& cfg) {
  Searcher s{cfg};
  SearchResult r;
  int alpha = -1000;
  for (std::uint32_t mv = 0; mv < cfg.branching; ++mv) {
    const int v =
        -s.negamax(mix(cfg.seed, mv), cfg.depth - 1, -1000, -alpha);
    if (v > r.value || mv == 0) {
      r.value = v;
      r.best_move = mv;
    }
    alpha = std::max(alpha, v);
  }
  r.nodes = s.nodes;
  return r;
}

SearchResult alphabeta_parallel(sim::Machine& m, const GameConfig& cfg,
                                std::uint32_t processors) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);

  SearchResult result;
  result.value = -1000;

  us.run_main([&] {
    // Shared alpha bound, protected by a spin lock (atomic-max emulation).
    sim::PhysAddr alpha_cell = us.alloc_on(0, 8);
    sim::PhysAddr alpha_lock = us.alloc_on(0, 8);
    m.poke<std::uint32_t>(alpha_cell, static_cast<std::uint32_t>(-1000 + 1024));
    m.poke<std::uint32_t>(alpha_lock, 0);

    const sim::Time t0 = m.now();
    us.for_all(0, cfg.branching, [&](us::TaskCtx& c) {
      const std::uint32_t mv = c.arg;
      // Read the bound other tasks have established so far.  The optimistic
      // read happens outside the lock, so it must go through the memory
      // module's atomic path (fetch-add of 0 is the PNC atomic-read idiom);
      // a plain load here would race with the locked publish below.  Same
      // single-word reference, so the timing is unchanged.
      const int shared_alpha =
          static_cast<int>(c.us.atomic_add(alpha_cell, 0)) - 1024;
      Searcher s{cfg};
      const int v = -s.negamax(mix(cfg.seed, mv), cfg.depth - 1, -1000,
                               -shared_alpha);
      // ~25 integer ops per search-tree node (move gen + evaluation).
      c.m.compute(s.nodes * 25);
      // Publish results under the lock.
      chrys::SpinLock lock(c.m, alpha_lock);
      lock.acquire();
      const int cur =
          static_cast<int>(c.us.get<std::uint32_t>(alpha_cell)) - 1024;
      if (v > cur)
        c.us.put<std::uint32_t>(alpha_cell,
                                static_cast<std::uint32_t>(v + 1024));
      lock.release();
      // Host-side reduction for best move and node count.
      if (v > result.value ||
          (v == result.value && mv < result.best_move)) {
        result.value = v;
        result.best_move = mv;
      }
      result.nodes += s.nodes;
    });
    result.elapsed = m.now() - t0;
  });
  return result;
}

}  // namespace bfly::apps
