// Gaussian elimination — the paper's best-studied application (Sections 3.1
// and 4.1, Figure 5).
//
// Two implementations of the same computation:
//
//  * gauss_us  — the Uniform System version (after R. Thomas, BBN): the
//    matrix lives in globally shared memory, rows scattered across memory
//    nodes; for every pivot a crowd of run-to-completion tasks copies rows
//    to local memory, updates them, and copies them back.  Communication
//    volume ~ (N^2 - N) row transfers + P(N-1) pivot-row fetches.
//
//  * gauss_smp — the message-passing version (after LeBlanc's case study):
//    P heavyweight SMP processes own interleaved rows; the owner of each
//    pivot row broadcasts it to the other P-1 processes.  Communication
//    volume ~ P*N messages, so doubling the parallelism doubles the
//    communication — the cause of the Figure 5 anomaly where the SMP curve
//    *rises* beyond 64 processors while the US curve stays flat.
//
// Both run on the same simulated machine and produce a real solution vector
// that tests verify against a host-side reference elimination.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

struct GaussConfig {
  std::uint32_t n = 128;           ///< system size
  std::uint32_t processors = 0;    ///< 0 = all nodes
  std::uint32_t memory_nodes = 0;  ///< nodes to spread rows over (0 = all)
  std::uint64_t seed = 42;         ///< system generator seed
};

struct GaussResult {
  sim::Time elapsed = 0;            ///< simulated wall time of the solve
  std::vector<double> solution;
  std::uint64_t messages = 0;       ///< SMP only
  std::uint64_t remote_refs = 0;
  std::uint64_t block_words = 0;
  sim::Time queue_ns = 0;           ///< total memory-module queueing
};

/// Deterministic well-conditioned system: A is diagonally dominant.
void generate_system(std::uint32_t n, std::uint64_t seed,
                     std::vector<double>& a, std::vector<double>& b);

/// Host-side reference solution (no simulation).
std::vector<double> gauss_reference(std::uint32_t n, std::uint64_t seed);

/// Shared-memory (Uniform System) implementation.
GaussResult gauss_us(sim::Machine& m, const GaussConfig& cfg);

/// Message-passing (SMP) implementation.
GaussResult gauss_smp(sim::Machine& m, const GaussConfig& cfg);

/// Max |x - x_ref| against the host reference.
double gauss_error(const GaussResult& r, std::uint32_t n, std::uint64_t seed);

}  // namespace bfly::apps
