#include "apps/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "sim/rng.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

std::vector<Point> random_points(std::uint32_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  while (pts.size() < n) {
    const double x = rng.uniform() * 2 - 1;
    const double y = rng.uniform() * 2 - 1;
    if (x * x + y * y <= 1.0) pts.push_back(Point{x, y});
  }
  return pts;
}

namespace {
double cross(const Point& o, const Point& a, const Point& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}
}  // namespace

std::vector<Point> hull_reference(const std::vector<Point>& pts) {
  std::vector<Point> p = pts;
  std::sort(p.begin(), p.end(), [](const Point& a, const Point& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  p.erase(std::unique(p.begin(), p.end()), p.end());
  if (p.size() < 3) return p;
  std::vector<Point> h(2 * p.size());
  std::size_t k = 0;
  for (const Point& pt : p) {  // lower
    while (k >= 2 && cross(h[k - 2], h[k - 1], pt) <= 0) --k;
    h[k++] = pt;
  }
  const std::size_t lower = k + 1;
  for (auto it = p.rbegin() + 1; it != p.rend(); ++it) {  // upper
    while (k >= lower && cross(h[k - 2], h[k - 1], *it) <= 0) --k;
    h[k++] = *it;
  }
  h.resize(k - 1);
  return h;
}

HullResult convex_hull(sim::Machine& m, const std::vector<Point>& pts,
                       std::uint32_t processors) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);

  HullResult result;
  const auto n = static_cast<std::uint32_t>(pts.size());

  us.run_main([&] {
    // Points live in shared memory, scattered in chunks.
    constexpr std::uint32_t kChunk = 64;
    const std::uint32_t chunks = (n + kChunk - 1) / kChunk;
    std::vector<sim::PhysAddr> mem = us.scatter_rows(chunks, kChunk * 16);
    for (std::uint32_t i = 0; i < n; ++i) {
      m.poke<double>(mem[i / kChunk].plus(16 * (i % kChunk)), pts[i].x);
      m.poke<double>(mem[i / kChunk].plus(16 * (i % kChunk) + 8), pts[i].y);
    }
    auto charge_scan = [&](us::TaskCtx& c, std::size_t count) {
      // Each candidate point is fetched (4 words) and tested (4 flops).
      c.m.access_words(sim::PhysAddr{c.node, 0},
                       static_cast<std::uint32_t>(4 * count));
      c.m.flops(4 * count);
    };

    std::vector<Point> hull_points;  // gathered hull vertices (host side)
    // Seed: leftmost and rightmost points.
    std::uint32_t li = 0, ri = 0;
    for (std::uint32_t i = 1; i < n; ++i) {
      if (pts[i].x < pts[li].x) li = i;
      if (pts[i].x > pts[ri].x) ri = i;
    }
    m.access_words(mem[0], 4 * n);  // the initial scan
    m.flops(2 * n);
    hull_points.push_back(pts[li]);
    hull_points.push_back(pts[ri]);

    // Recursive quickhull tasks; each carries its candidate subset.
    struct Job {
      Point a, b;
      std::vector<std::uint32_t> candidates;
    };
    std::deque<Job> jobs;  // stable storage; index passed as task arg
    std::function<void(Point, Point, std::vector<std::uint32_t>)> spawn =
        [&](Point a, Point b, std::vector<std::uint32_t> cand) {
          jobs.push_back(Job{a, b, std::move(cand)});
          const auto id = static_cast<std::uint32_t>(jobs.size() - 1);
          us.gen_task(
              [&](us::TaskCtx& c) {
                const Job& job = jobs[c.arg];
                charge_scan(c, job.candidates.size());
                double best = 1e-12;
                std::uint32_t far = 0xffffffffu;
                for (std::uint32_t i : job.candidates) {
                  const double d = cross(job.a, job.b, pts[i]);
                  if (d > best) {
                    best = d;
                    far = i;
                  }
                }
                if (far == 0xffffffffu) return;  // a-b is a hull edge
                const Point c2 = pts[far];
                hull_points.push_back(c2);
                std::vector<std::uint32_t> left, right;
                for (std::uint32_t i : job.candidates) {
                  if (i == far) continue;
                  if (cross(job.a, c2, pts[i]) > 1e-12) left.push_back(i);
                  else if (cross(c2, job.b, pts[i]) > 1e-12)
                    right.push_back(i);
                }
                spawn(job.a, c2, std::move(left));
                spawn(c2, job.b, std::move(right));
              },
              id);
        };

    const sim::Time t0 = m.now();
    std::vector<std::uint32_t> above, below;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i == li || i == ri) continue;
      if (cross(pts[li], pts[ri], pts[i]) > 1e-12) above.push_back(i);
      else if (cross(pts[ri], pts[li], pts[i]) > 1e-12) below.push_back(i);
    }
    spawn(pts[li], pts[ri], std::move(above));
    spawn(pts[ri], pts[li], std::move(below));
    us.wait_idle();
    result.elapsed = m.now() - t0;

    // Order the gathered vertices (small set) with a host-side chain.
    result.hull = hull_reference(hull_points);
  });
  return result;
}

}  // namespace bfly::apps
