// Connectionist network simulator (Fanty, TR 164; Section 3.1).
//
// "The first significant application developed for the Butterfly at
// Rochester was the Connectionist Simulator ... With 120 Mbytes of physical
// memory we were able to build networks that had led to hopeless thrashing
// on a VAX.  With 120-way parallelism, we were able to simulate in minutes
// networks that had previously taken hours."
//
// The model: units with weighted fan-in; each round every unit computes a
// squashed weighted sum of its inputs' activations.  Units are partitioned
// across processors; each worker pulls the (dense) activation vector into
// local memory once per round (the US copy idiom), computes its units, and
// writes its chunk of the new activations back.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

struct ConnectionistConfig {
  std::uint32_t units = 512;
  std::uint32_t fanin = 16;      ///< connections per unit
  std::uint32_t rounds = 10;
  std::uint32_t processors = 0;  ///< 0 = all
  std::uint64_t seed = 17;
};

struct ConnectionistResult {
  sim::Time elapsed = 0;
  std::vector<float> activations;
  std::size_t network_bytes = 0;  ///< simulated memory the network occupies
};

/// Host-side reference simulation for verification.
std::vector<float> connectionist_reference(const ConnectionistConfig& cfg);

/// Uniform System implementation on the simulated Butterfly.
ConnectionistResult connectionist(sim::Machine& m,
                                  const ConnectionistConfig& cfg);

}  // namespace bfly::apps
