#include "apps/mst.hpp"

#include <algorithm>
#include <numeric>

#include "sim/rng.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

WeightedGraph WeightedGraph::random(std::uint32_t n,
                                    std::uint32_t extra_edges,
                                    std::uint64_t seed) {
  WeightedGraph g;
  g.n = n;
  sim::Rng rng(seed);
  // Spanning cycle guarantees connectivity; distinct weights guarantee a
  // unique MST (easier verification).
  std::vector<std::uint32_t> weights(n + extra_edges);
  std::iota(weights.begin(), weights.end(), 1u);
  for (std::uint32_t i = weights.size(); i-- > 1;)
    std::swap(weights[i], weights[rng.below(i + 1)]);
  std::uint32_t wi = 0;
  for (std::uint32_t v = 0; v < n; ++v)
    g.edges.push_back(Edge{v, (v + 1) % n, weights[wi++]});
  for (std::uint32_t e = 0; e < extra_edges; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    const auto b = static_cast<std::uint32_t>(rng.below(n));
    if (a != b) g.edges.push_back(Edge{a, b, weights[wi]});
    ++wi;
  }
  return g;
}

namespace {
struct Dsu {
  std::vector<std::uint32_t> parent;
  explicit Dsu(std::uint32_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }
  std::uint32_t find(std::uint32_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[a] = b;
    return true;
  }
};
}  // namespace

std::uint64_t mst_reference(const WeightedGraph& g) {
  std::vector<WeightedGraph::Edge> es = g.edges;
  std::sort(es.begin(), es.end(),
            [](const auto& x, const auto& y) { return x.w < y.w; });
  Dsu dsu(g.n);
  std::uint64_t total = 0;
  for (const auto& e : es)
    if (dsu.unite(e.a, e.b)) total += e.w;
  return total;
}

MstResult boruvka_mst(sim::Machine& m, const WeightedGraph& g,
                      std::uint32_t processors) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);
  const std::uint32_t procs = us.processors();

  MstResult result;
  us.run_main([&] {
    // Component labels in shared memory; edges scattered in chunks that
    // tasks pull local before scanning (the usual US idiom).
    constexpr std::uint32_t kChunk = 64;
    const std::uint32_t lchunks = (g.n + kChunk - 1) / kChunk;
    std::vector<sim::PhysAddr> labels = us.scatter_rows(lchunks, kChunk * 4);
    auto label_addr = [&](std::uint32_t v) {
      return labels[v / kChunk].plus(4 * (v % kChunk));
    };
    Dsu dsu(g.n);
    for (std::uint32_t v = 0; v < g.n; ++v)
      m.poke<std::uint32_t>(label_addr(v), v);

    const auto ecount = static_cast<std::uint32_t>(g.edges.size());
    const std::uint32_t span = std::max(1u, (ecount + procs - 1) / procs);
    const std::uint32_t tasks = (ecount + span - 1) / span;
    // best[c] = (weight, edge index) cheapest edge leaving component c;
    // maintained host-side per worker then merged (min-reduction).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> best;

    const sim::Time t0 = m.now();
    bool merged = true;
    while (merged) {
      merged = false;
      best.assign(g.n, {0xffffffffu, 0xffffffffu});
      std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
          wbest(procs);
      us.for_all(0, tasks, [&, span](us::TaskCtx& c) {
        auto& mine = wbest[c.worker];
        if (mine.empty()) mine.assign(g.n, {0xffffffffu, 0xffffffffu});
        const std::uint32_t lo = c.arg * span;
        const std::uint32_t hi = std::min(lo + span, ecount);
        // Pull this chunk of the edge list local (3 words per edge).
        c.m.access_words(sim::PhysAddr{c.node, 0}, 3 * (hi - lo));
        c.m.compute(4 * (hi - lo));
        for (std::uint32_t i = lo; i < hi; ++i) {
          const auto& e = g.edges[i];
          // Component lookups: two shared label reads.
          const auto ca = m.read<std::uint32_t>(label_addr(e.a));
          const auto cb = m.read<std::uint32_t>(label_addr(e.b));
          if (ca == cb) continue;
          if (e.w < mine[ca].first) mine[ca] = {e.w, i};
          if (e.w < mine[cb].first) mine[cb] = {e.w, i};
        }
      });
      // Serial reduction + merge (the coordinator's share).
      for (const auto& wb : wbest)
        for (std::uint32_t comp = 0; comp < wb.size(); ++comp)
          if (wb[comp].first < best[comp].first) best[comp] = wb[comp];
      m.compute(g.n / 2);
      for (std::uint32_t comp = 0; comp < g.n; ++comp) {
        const auto [w, ei] = best[comp];
        if (ei == 0xffffffffu) continue;
        const auto& e = g.edges[ei];
        if (dsu.unite(e.a, e.b)) {
          result.total_weight += w;
          ++result.edges_used;
          merged = true;
        }
      }
      // Publish new labels (path-compressed roots).
      for (std::uint32_t v = 0; v < g.n; ++v)
        m.poke<std::uint32_t>(label_addr(v), dsu.find(v));
      m.access_words(labels[0], g.n / 8);  // label update traffic
    }
    result.elapsed = m.now() - t0;
  });
  return result;
}

}  // namespace bfly::apps
