#include "apps/pedagogical.hpp"

#include <algorithm>

#include "chrysalis/spinlock.hpp"
#include "sim/rng.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

// --- N-queens ---------------------------------------------------------------

namespace {

std::uint64_t queens_count(std::uint32_t n, std::uint32_t row,
                           std::uint32_t cols, std::uint32_t diag1,
                           std::uint32_t diag2, std::uint64_t* nodes) {
  if (row == n) return 1;
  std::uint64_t total = 0;
  std::uint32_t avail = ~(cols | diag1 | diag2) & ((1u << n) - 1);
  while (avail) {
    const std::uint32_t bit = avail & (~avail + 1);
    avail ^= bit;
    ++*nodes;
    total += queens_count(n, row + 1, cols | bit, (diag1 | bit) << 1,
                          (diag2 | bit) >> 1, nodes);
  }
  return total;
}

}  // namespace

std::uint64_t queens_reference(std::uint32_t n) {
  std::uint64_t nodes = 0;
  return queens_count(n, 0, 0, 0, 0, &nodes);
}

QueensResult queens(sim::Machine& m, std::uint32_t n,
                    std::uint32_t processors) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);

  QueensResult result;
  us.run_main([&] {
    sim::PhysAddr total = us.alloc_on(0, 8);
    m.poke<std::uint32_t>(total, 0);
    const sim::Time t0 = m.now();
    // One task per first-row column; each explores its subtree.
    us.for_all(0, n, [&, n](us::TaskCtx& c) {
      const std::uint32_t bit = 1u << c.arg;
      std::uint64_t nodes = 0;
      const std::uint64_t found =
          queens_count(n, 1, bit, bit << 1, bit >> 1, &nodes);
      c.m.compute(nodes * 6);  // bit ops per search-tree node
      if (found) c.us.atomic_add(total, static_cast<std::uint32_t>(found));
    });
    result.elapsed = m.now() - t0;
    result.solutions = m.peek<std::uint32_t>(total);
  });
  return result;
}

// --- Knight's tour -------------------------------------------------------------

namespace {

constexpr int kMoves[8][2] = {{1, 2},  {2, 1},  {2, -1}, {1, -2},
                              {-1, -2}, {-2, -1}, {-2, 1}, {-1, 2}};

struct TourSearch {
  std::uint32_t size;
  std::vector<std::uint8_t> board;  // visit order, 0 = unvisited
  std::uint64_t visits = 0;

  bool on(int x, int y) const {
    return x >= 0 && y >= 0 && x < static_cast<int>(size) &&
           y < static_cast<int>(size);
  }
  std::uint8_t& at(int x, int y) { return board[y * size + x]; }

  int degree(int x, int y) {
    int d = 0;
    for (const auto& mv : kMoves) {
      const int nx = x + mv[0], ny = y + mv[1];
      if (on(nx, ny) && at(nx, ny) == 0) ++d;
    }
    return d;
  }

  /// Warnsdorf-ordered depth-first search; `tiebreak` rotates the move
  /// ordering so different workers find different tours.
  bool dfs(int x, int y, std::uint32_t step, std::uint32_t tiebreak) {
    ++visits;
    at(x, y) = static_cast<std::uint8_t>(step);
    if (step == size * size) return true;
    // Sort moves by onward degree (Warnsdorf), rotated by the tiebreak.
    struct Cand {
      int x, y, deg;
    };
    std::vector<Cand> cands;
    for (std::uint32_t i = 0; i < 8; ++i) {
      const auto& mv = kMoves[(i + tiebreak) % 8];
      const int nx = x + mv[0], ny = y + mv[1];
      if (on(nx, ny) && at(nx, ny) == 0)
        cands.push_back(Cand{nx, ny, degree(nx, ny)});
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const Cand& a, const Cand& b) { return a.deg < b.deg; });
    for (const Cand& cd : cands)
      if (dfs(cd.x, cd.y, step + 1, tiebreak)) return true;
    at(x, y) = 0;
    return false;
  }
};

}  // namespace

KnightResult knights_tour(sim::Machine& m, std::uint32_t size,
                          std::uint32_t processors, std::uint64_t jitter_seed) {
  chrys::Kernel k(m);
  const std::uint32_t procs = std::min(processors, m.nodes());

  KnightResult result;
  sim::PhysAddr found_flag = m.alloc(0, 8);
  m.poke<std::uint32_t>(found_flag, 0);
  sim::Rng jitter(jitter_seed);
  std::vector<sim::Time> delay(procs);
  for (auto& d : delay) d = (1 + jitter.below(50)) * 100 * sim::kMicrosecond;

  for (std::uint32_t w = 0; w < procs; ++w) {
    k.create_process(w, [&, w] {
      k.delay(delay[w]);  // timing perturbation: who wins is up for grabs
      TourSearch s;
      s.size = size;
      s.board.assign(static_cast<std::size_t>(size) * size, 0);
      // Workers start from different corners/tiebreaks.
      const int sx = (w % 2 == 0) ? 0 : static_cast<int>(size) - 1;
      const int sy = (w / 2 % 2 == 0) ? 0 : static_cast<int>(size) - 1;
      const bool ok = s.dfs(sx, sy, 1, w);
      m.compute(s.visits * 30);
      // First finisher claims the flag (an atomic on shared memory).
      if (ok && m.test_and_set(found_flag) == 0) {
        result.found = true;
        result.winner = w;
        result.tour = s.board;
      }
    });
  }
  const sim::Time t0 = m.now();
  result.elapsed = m.run() - t0;
  return result;
}

}  // namespace bfly::apps
