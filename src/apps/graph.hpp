// Graph algorithms from the DARPA benchmark study and class projects
// (Sections 3.1 and 4.2): connected component labeling, transitive
// closure, and subgraph isomorphism.
//
// These are the applications whose awkward fit with the 1986-era
// environments ("none of the models then available was appropriate for
// certain graph problems") motivated Ant Farm; here they run under the
// Uniform System with the label-propagation / row-sweep / work-queue
// formulations the benchmark study used.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

/// Undirected graph as adjacency lists, deterministic random construction.
struct Graph {
  std::uint32_t n = 0;
  std::vector<std::vector<std::uint32_t>> adj;

  static Graph random(std::uint32_t n, std::uint32_t avg_degree,
                      std::uint64_t seed);
  /// Disjoint cliques (for easy component verification).
  static Graph cliques(std::uint32_t count, std::uint32_t size);
  void add_edge(std::uint32_t a, std::uint32_t b);
};

struct GraphRunResult {
  sim::Time elapsed = 0;
  std::vector<std::uint32_t> labels;  // CC: component label per vertex
  std::uint64_t value = 0;            // closure: reachable pairs; iso: matches
};

/// Connected component labeling by parallel label propagation.
GraphRunResult connected_components(sim::Machine& m, const Graph& g,
                                    std::uint32_t processors);
/// Host reference.
std::vector<std::uint32_t> cc_reference(const Graph& g);

/// Transitive closure (boolean Warshall, row-parallel).  Returns the number
/// of reachable ordered pairs (including self).
GraphRunResult transitive_closure(sim::Machine& m, const Graph& g,
                                  std::uint32_t processors);
std::uint64_t closure_reference(const Graph& g);

/// Count embeddings of `pattern` in `host` (subgraph isomorphism by
/// work-queue backtracking; node-induced, injective).
GraphRunResult subgraph_isomorphism(sim::Machine& m, const Graph& pattern,
                                    const Graph& host,
                                    std::uint32_t processors);
std::uint64_t iso_reference(const Graph& pattern, const Graph& host);

}  // namespace bfly::apps
