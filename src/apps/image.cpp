#include "apps/image.hpp"

#include <algorithm>
#include <cmath>

#include "sim/rng.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

Image Image::synthetic(std::uint32_t w, std::uint32_t h, std::uint64_t seed) {
  Image img;
  img.width = w;
  img.height = h;
  img.pixels.resize(static_cast<std::size_t>(w) * h);
  sim::Rng rng(seed);
  // Smooth gradient + blobs + noise: interesting for every filter.
  for (std::uint32_t y = 0; y < h; ++y)
    for (std::uint32_t x = 0; x < w; ++x)
      img.pixels[static_cast<std::size_t>(y) * w + x] =
          static_cast<std::uint8_t>((x * 255 / w + y * 128 / h) / 2);
  for (int blob = 0; blob < 6; ++blob) {
    const auto cx = rng.below(w), cy = rng.below(h);
    const auto r = 4 + rng.below(std::min(w, h) / 6);
    for (std::uint32_t y = 0; y < h; ++y)
      for (std::uint32_t x = 0; x < w; ++x) {
        const double d = std::hypot(static_cast<double>(x) - cx,
                                    static_cast<double>(y) - cy);
        if (d < r)
          img.pixels[static_cast<std::size_t>(y) * w + x] =
              static_cast<std::uint8_t>(200 + blob * 8);
      }
  }
  for (int i = 0; i < 200; ++i)
    img.pixels[rng.below(w * h)] = static_cast<std::uint8_t>(rng.below(256));
  return img;
}

Filter filter_threshold(std::uint8_t level) {
  return [level](const Image& in, Image& out) {
    for (std::size_t i = 0; i < in.pixels.size(); ++i)
      out.pixels[i] = in.pixels[i] >= level ? 255 : 0;
  };
}

Filter filter_invert() {
  return [](const Image& in, Image& out) {
    for (std::size_t i = 0; i < in.pixels.size(); ++i)
      out.pixels[i] = static_cast<std::uint8_t>(255 - in.pixels[i]);
  };
}

Filter filter_box3() {
  return [](const Image& in, Image& out) {
    for (std::uint32_t y = 0; y < in.height; ++y)
      for (std::uint32_t x = 0; x < in.width; ++x) {
        int sum = 0, cnt = 0;
        for (int dy = -1; dy <= 1; ++dy)
          for (int dx = -1; dx <= 1; ++dx) {
            const int nx = static_cast<int>(x) + dx;
            const int ny = static_cast<int>(y) + dy;
            if (nx < 0 || ny < 0 || nx >= static_cast<int>(in.width) ||
                ny >= static_cast<int>(in.height))
              continue;
            sum += in.at(nx, ny);
            ++cnt;
          }
        out.pixels[static_cast<std::size_t>(y) * in.width + x] =
            static_cast<std::uint8_t>(sum / cnt);
      }
  };
}

Filter filter_sobel() {
  return [](const Image& in, Image& out) {
    for (std::uint32_t y = 0; y < in.height; ++y)
      for (std::uint32_t x = 0; x < in.width; ++x) {
        auto px = [&](int xx, int yy) -> int {
          xx = std::clamp(xx, 0, static_cast<int>(in.width) - 1);
          yy = std::clamp(yy, 0, static_cast<int>(in.height) - 1);
          return in.at(xx, yy);
        };
        const int ix = static_cast<int>(x), iy = static_cast<int>(y);
        const int gx = px(ix + 1, iy - 1) + 2 * px(ix + 1, iy) +
                       px(ix + 1, iy + 1) - px(ix - 1, iy - 1) -
                       2 * px(ix - 1, iy) - px(ix - 1, iy + 1);
        const int gy = px(ix - 1, iy + 1) + 2 * px(ix, iy + 1) +
                       px(ix + 1, iy + 1) - px(ix - 1, iy - 1) -
                       2 * px(ix, iy - 1) - px(ix + 1, iy - 1);
        out.pixels[static_cast<std::size_t>(y) * in.width + x] =
            static_cast<std::uint8_t>(
                std::min(255, std::abs(gx) + std::abs(gy)));
      }
  };
}

Filter filter_zero_crossings() {
  // Zero-crossing detection (the DARPA benchmark's edge finder): mark
  // pixels where the discrete Laplacian changes sign against a neighbour.
  return [](const Image& in, Image& out) {
    std::vector<int> lap(in.pixels.size(), 0);
    auto px = [&](int x, int y) -> int {
      x = std::clamp(x, 0, static_cast<int>(in.width) - 1);
      y = std::clamp(y, 0, static_cast<int>(in.height) - 1);
      return in.at(x, y);
    };
    for (std::uint32_t y = 0; y < in.height; ++y)
      for (std::uint32_t x = 0; x < in.width; ++x) {
        const int ix = static_cast<int>(x), iy = static_cast<int>(y);
        lap[static_cast<std::size_t>(y) * in.width + x] =
            4 * px(ix, iy) - px(ix - 1, iy) - px(ix + 1, iy) -
            px(ix, iy - 1) - px(ix, iy + 1);
      }
    for (std::uint32_t y = 0; y < in.height; ++y)
      for (std::uint32_t x = 0; x < in.width; ++x) {
        const std::size_t i = static_cast<std::size_t>(y) * in.width + x;
        bool crossing = false;
        const int v = lap[i];
        if (x + 1 < in.width && v * lap[i + 1] < 0) crossing = true;
        if (y + 1 < in.height && v * lap[i + in.width] < 0) crossing = true;
        out.pixels[i] = crossing ? 255 : 0;
      }
  };
}

BiffResult biff_apply(sim::Machine& m, const Image& input,
                      const Filter& host_filter, std::uint32_t processors,
                      std::uint64_t ops_per_pixel) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);

  BiffResult result;
  result.image.width = input.width;
  result.image.height = input.height;
  result.image.pixels.resize(input.pixels.size());
  // The host filter computes the whole output once; the tasks charge the
  // parallel cost of producing their band (copy band+halo local, compute,
  // copy result back).
  host_filter(input, result.image);

  us.run_main([&] {
    std::vector<sim::PhysAddr> rows =
        us.scatter_rows(input.height, input.width);
    for (std::uint32_t y = 0; y < input.height; ++y)
      m.poke_bytes(rows[y], &input.pixels[static_cast<std::size_t>(y) *
                                          input.width],
                   input.width);
    std::vector<sim::PhysAddr> out_rows =
        us.scatter_rows(input.height, input.width);

    const sim::Time t0 = m.now();
    us.for_all(0, input.height, [&](us::TaskCtx& c) {
      const std::uint32_t y = c.arg;
      std::vector<std::uint8_t> band(input.width);
      // Input row plus halo rows for neighbourhood filters.
      c.us.copy_to_local(band.data(), rows[y], input.width);
      if (y > 0) c.us.copy_to_local(band.data(), rows[y - 1], input.width);
      if (y + 1 < input.height)
        c.us.copy_to_local(band.data(), rows[y + 1], input.width);
      c.m.compute(ops_per_pixel * input.width);
      c.us.copy_from_local(
          out_rows[y],
          &result.image.pixels[static_cast<std::size_t>(y) * input.width],
          input.width);
    });
    result.elapsed = m.now() - t0;
  });
  return result;
}

BiffResult biff_histogram(sim::Machine& m, const Image& input,
                          std::uint32_t processors) {
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = processors;
  us::UniformSystem us(k, ucfg);
  const std::uint32_t procs = us.processors();

  BiffResult result;
  result.histogram.assign(256, 0);

  us.run_main([&] {
    std::vector<sim::PhysAddr> rows =
        us.scatter_rows(input.height, input.width);
    for (std::uint32_t y = 0; y < input.height; ++y)
      m.poke_bytes(rows[y], &input.pixels[static_cast<std::size_t>(y) *
                                          input.width],
                   input.width);
    sim::PhysAddr global = us.alloc_on(0, 256 * 4);
    for (int b = 0; b < 256; ++b)
      m.poke<std::uint32_t>(global.plus(4 * b), 0);

    std::vector<std::vector<std::uint32_t>> local(
        procs, std::vector<std::uint32_t>(256, 0));
    const sim::Time t0 = m.now();
    us.for_all(0, input.height, [&](us::TaskCtx& c) {
      const std::uint32_t y = c.arg;
      std::vector<std::uint8_t> band(input.width);
      c.us.copy_to_local(band.data(), rows[y], input.width);
      c.m.compute(2 * input.width);
      for (std::uint8_t px : band) ++local[c.worker][px];
    });
    // Merge the per-worker histograms (256 atomic adds per worker).
    us.for_all(0, procs, [&](us::TaskCtx& c) {
      for (int b = 0; b < 256; ++b)
        if (local[c.worker][b] != 0)
          c.us.atomic_add(global.plus(4 * b), local[c.worker][b]);
    });
    result.elapsed = m.now() - t0;
    for (int b = 0; b < 256; ++b)
      result.histogram[b] = m.peek<std::uint32_t>(global.plus(4 * b));
  });
  return result;
}

BiffResult biff_pipeline(sim::Machine& m, const Image& input,
                         const std::vector<Filter>& stages,
                         std::uint32_t processors) {
  BiffResult out;
  Image cur = input;
  sim::Time total = 0;
  for (const Filter& f : stages) {
    // Each stage gets a fresh machine region of simulated time on the same
    // machine; we simply run them back to back.
    BiffResult r = biff_apply(m, cur, f, processors);
    total += r.elapsed;
    cur = std::move(r.image);
  }
  out.elapsed = total;
  out.image = std::move(cur);
  return out;
}

}  // namespace bfly::apps
