// BIFF — Butterfly IFF image processing (Olson, BPR 9; Section 3.1).
//
// Rochester's vision group extended the UBC IFF model — vision utilities
// composed as filters over image streams — into parallel processing: "A
// researcher at a workstation can download an image into the Butterfly,
// apply a complex sequence of operations, and upload the result in a tiny
// fraction of the time required to perform the same operations locally."
//
// This module provides Uniform System-based parallel versions of the
// standard filters (threshold, box smooth, 3x3 convolution, Sobel edge
// magnitude, histogram) over 8-bit images in shared memory, plus a
// pipeline combinator for composing them.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

struct Image {
  std::uint32_t width = 0, height = 0;
  std::vector<std::uint8_t> pixels;

  std::uint8_t at(std::uint32_t x, std::uint32_t y) const {
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
  static Image synthetic(std::uint32_t w, std::uint32_t h,
                         std::uint64_t seed);
};

class BiffSession;

/// A filter maps an input image row band to output pixels; provided filters
/// cover the standard IFF set.
using Filter = std::function<void(const Image& in, Image& out)>;

struct BiffResult {
  sim::Time elapsed = 0;
  Image image;
  std::vector<std::uint32_t> histogram;  // filled by biff_histogram
};

/// Apply one host-defined per-band filter in parallel on the machine.
BiffResult biff_apply(sim::Machine& m, const Image& input,
                      const Filter& host_filter, std::uint32_t processors,
                      std::uint64_t ops_per_pixel = 8);

// Standard filters (host semantics; biff_apply parallelizes them).
Filter filter_threshold(std::uint8_t level);
Filter filter_box3();                 ///< 3x3 box smoothing
Filter filter_sobel();                ///< edge magnitude, clamped to 255
Filter filter_zero_crossings();       ///< Laplacian zero-crossing detector
Filter filter_invert();

/// 256-bin histogram with per-worker local accumulation and a merge phase.
BiffResult biff_histogram(sim::Machine& m, const Image& input,
                          std::uint32_t processors);

/// Compose filters as an IFF-style pipeline (each stage fully parallel).
BiffResult biff_pipeline(sim::Machine& m, const Image& input,
                         const std::vector<Filter>& stages,
                         std::uint32_t processors);

}  // namespace bfly::apps
