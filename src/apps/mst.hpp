// Minimal spanning tree — one of the DARPA benchmark's "geometric
// constructions (convex hull, Voronoi diagram, minimal spanning tree)"
// (Section 3.1).  Parallel Boruvka: in each round every component finds its
// cheapest outgoing edge in parallel (Uniform System tasks over vertex
// chunks), then components merge; O(log V) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

struct WeightedGraph {
  std::uint32_t n = 0;
  struct Edge {
    std::uint32_t a, b;
    std::uint32_t w;
  };
  std::vector<Edge> edges;

  /// Connected random graph: a spanning cycle plus extra random edges.
  static WeightedGraph random(std::uint32_t n, std::uint32_t extra_edges,
                              std::uint64_t seed);
};

struct MstResult {
  sim::Time elapsed = 0;
  std::uint64_t total_weight = 0;
  std::uint32_t edges_used = 0;
};

/// Parallel Boruvka on the simulated machine.
MstResult boruvka_mst(sim::Machine& m, const WeightedGraph& g,
                      std::uint32_t processors);

/// Host reference (Kruskal).
std::uint64_t mst_reference(const WeightedGraph& g);

}  // namespace bfly::apps
