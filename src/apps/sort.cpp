#include "apps/sort.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>

#include "sim/rng.hpp"
#include "smp/family.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

std::vector<std::uint32_t> random_keys(std::uint32_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next());
  return keys;
}

// ---------------------------------------------------------------------------
// Odd-even transposition sort (SMP).
// ---------------------------------------------------------------------------

SortResult odd_even_sort(sim::Machine& m, const SortConfig& cfg) {
  const std::uint32_t procs = std::min(cfg.processors, m.nodes());
  const std::uint32_t n = cfg.n;
  chrys::Kernel k(m);

  SortResult result;
  std::vector<std::uint32_t> keys = random_keys(n, cfg.seed);
  // Slices: member w owns keys [w*n/P, (w+1)*n/P).
  std::vector<std::vector<std::uint32_t>> slice(procs);
  for (std::uint32_t w = 0; w < procs; ++w)
    slice[w].assign(keys.begin() + w * n / procs,
                    keys.begin() + (w + 1) * n / procs);

  k.create_process(0, [&] {
    const sim::Time t0 = m.now();
    smp::Family fam(
        k, smp::Topology::line(procs),
        [&](smp::Member& me) {
          const std::uint32_t w = me.index();
          std::vector<std::uint32_t>& mine = slice[w];
          std::sort(mine.begin(), mine.end());
          m.compute(mine.size() * 12);  // local sort
          // Neighbours can run one phase ahead; match replies by phase tag.
          std::unordered_map<std::uint32_t, smp::Message> stash;
          auto recv_tag = [&](std::uint32_t want) {
            auto it = stash.find(want);
            if (it != stash.end()) {
              smp::Message msg = std::move(it->second);
              stash.erase(it);
              return msg;
            }
            while (true) {
              smp::Message msg = me.receive();
              if (msg.tag == want) return msg;
              stash.emplace(msg.tag, std::move(msg));
            }
          };
          for (std::uint32_t phase = 0; phase < procs; ++phase) {
            const bool even_phase = phase % 2 == 0;
            const bool lower = even_phase ? (w % 2 == 0) : (w % 2 == 1);
            const std::uint32_t partner = lower ? w + 1 : w - 1;
            if (partner >= procs || (!lower && w == 0)) continue;

            auto exchange = [&] {
              smp::Message msg = recv_tag(phase);
              std::vector<std::uint32_t> theirs(msg.payload.size() / 4);
              std::memcpy(theirs.data(), msg.payload.data(),
                          msg.payload.size());
              // Merge; keep low half if lower partner, high half otherwise.
              std::vector<std::uint32_t> merged;
              merged.reserve(mine.size() + theirs.size());
              std::merge(mine.begin(), mine.end(), theirs.begin(),
                         theirs.end(), std::back_inserter(merged));
              m.compute(merged.size() * 3);
              if (lower)
                mine.assign(merged.begin(), merged.begin() + mine.size());
              else
                mine.assign(merged.end() - mine.size(), merged.end());
            };

            if (cfg.inject_deadlock) {
              // THE BUG (Figure 6): both partners wait for the other's
              // slice before sending their own.  Nobody ever sends.
              exchange();
              me.send(partner, phase, mine.data(), mine.size() * 4);
            } else {
              me.send(partner, phase, mine.data(), mine.size() * 4);
              exchange();
            }
          }
        });
    fam.join();
    result.elapsed = m.now() - t0;
  });
  m.run();
  result.deadlocked = m.deadlocked();
  if (!result.deadlocked) {
    for (std::uint32_t w = 0; w < procs; ++w)
      result.keys.insert(result.keys.end(), slice[w].begin(), slice[w].end());
  }
  return result;
}

// ---------------------------------------------------------------------------
// Bitonic sort (Uniform System).
// ---------------------------------------------------------------------------

SortResult bitonic_sort(sim::Machine& m, const SortConfig& cfg) {
  const std::uint32_t n = cfg.n;
  assert((n & (n - 1)) == 0 && "bitonic sort needs a power of two");
  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = cfg.processors;
  us::UniformSystem us(k, ucfg);
  const std::uint32_t procs = us.processors();

  SortResult result;
  std::vector<std::uint32_t> keys = random_keys(n, cfg.seed);

  us.run_main([&] {
    // The array lives in shared memory, scattered in chunks of 256 keys.
    constexpr std::uint32_t kChunk = 256;
    const std::uint32_t chunks = (n + kChunk - 1) / kChunk;
    std::vector<sim::PhysAddr> arr = us.scatter_rows(chunks, kChunk * 4);
    for (std::uint32_t c = 0; c < chunks; ++c)
      m.poke_bytes(arr[c], keys.data() + c * kChunk,
                   std::min<std::uint32_t>(kChunk, n - c * kChunk) * 4);
    auto key_addr = [&](std::uint32_t i) {
      return arr[i / kChunk].plus(4 * (i % kChunk));
    };

    const sim::Time t0 = m.now();
    // Batcher's network: outer size k, inner distance j.
    for (std::uint32_t kk = 2; kk <= n; kk <<= 1) {
      for (std::uint32_t j = kk >> 1; j > 0; j >>= 1) {
        const std::uint32_t pairs = n / 2;
        const std::uint32_t span = std::max(1u, pairs / procs);
        const std::uint32_t tasks = (pairs + span - 1) / span;
        us.for_all(0, tasks, [&, kk, j, span](us::TaskCtx& c) {
          const std::uint32_t lo = c.arg * span;
          const std::uint32_t hi = std::min(lo + span, n / 2);
          for (std::uint32_t p = lo; p < hi; ++p) {
            // The p-th compare-exchange at distance j.
            const std::uint32_t i = 2 * j * (p / j) + (p % j);
            const std::uint32_t partner = i ^ j;
            if (partner <= i) continue;
            const bool ascending = (i & kk) == 0;
            const std::uint32_t a = m.read<std::uint32_t>(key_addr(i));
            const std::uint32_t b = m.read<std::uint32_t>(key_addr(partner));
            c.m.compute(2);
            if ((a > b) == ascending) {
              m.write<std::uint32_t>(key_addr(i), b);
              m.write<std::uint32_t>(key_addr(partner), a);
            }
          }
        });
      }
    }
    result.elapsed = m.now() - t0;
    result.keys.resize(n);
    for (std::uint32_t c = 0; c < chunks; ++c)
      m.peek_bytes(result.keys.data() + c * kChunk, arr[c],
                   std::min<std::uint32_t>(kChunk, n - c * kChunk) * 4);
  });
  result.deadlocked = m.deadlocked();
  return result;
}

}  // namespace bfly::apps
