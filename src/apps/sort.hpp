// Parallel sorting on the Butterfly (Sections 3.1 and 3.3).
//
// Two sorters from the Rochester application suite:
//
//  * odd_even_sort — odd-even transposition sort over an SMP line of P
//    processes, each holding a slice of the keys.  In each phase adjacent
//    partners exchange whole slices and keep the lower/upper halves.  The
//    paper's Figure 6 is a Moviola view of *deadlock* in an odd-even merge
//    sort; `inject_deadlock` reproduces that bug: both partners receive
//    before sending, so every process blocks on its mailbox forever.
//
//  * bitonic_sort — Batcher's bitonic network over Uniform System shared
//    memory ("extensive analysis of a Butterfly implementation of
//    Batcher's bitonic merge sort" was part of the Instant Replay work).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

struct SortConfig {
  std::uint32_t n = 1024;        ///< number of keys (power of two for bitonic)
  std::uint32_t processors = 8;
  std::uint64_t seed = 3;
  bool inject_deadlock = false;  ///< odd-even only: the Figure 6 bug
};

struct SortResult {
  sim::Time elapsed = 0;
  std::vector<std::uint32_t> keys;
  bool deadlocked = false;
};

std::vector<std::uint32_t> random_keys(std::uint32_t n, std::uint64_t seed);

/// SMP odd-even transposition sort.  With cfg.inject_deadlock the run ends
/// in a machine-wide deadlock (result.deadlocked = true, keys empty).
SortResult odd_even_sort(sim::Machine& m, const SortConfig& cfg);

/// Uniform System bitonic sort (n and processors powers of two).
SortResult bitonic_sort(sim::Machine& m, const SortConfig& cfg);

}  // namespace bfly::apps
