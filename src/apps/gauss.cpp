#include "apps/gauss.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "sim/rng.hpp"
#include "smp/family.hpp"
#include "us/uniform_system.hpp"

namespace bfly::apps {

void generate_system(std::uint32_t n, std::uint64_t seed,
                     std::vector<double>& a, std::vector<double>& b) {
  sim::Rng rng(seed);
  a.assign(static_cast<std::size_t>(n) * n, 0.0);
  b.assign(n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j)
      a[static_cast<std::size_t>(i) * n + j] = rng.uniform();
    a[static_cast<std::size_t>(i) * n + i] += n;  // diagonal dominance
    b[i] = rng.uniform() * n;
  }
}

std::vector<double> gauss_reference(std::uint32_t n, std::uint64_t seed) {
  std::vector<double> a, b;
  generate_system(n, seed, a, b);
  for (std::uint32_t k = 0; k < n; ++k) {
    const double piv = a[static_cast<std::size_t>(k) * n + k];
    for (std::uint32_t i = k + 1; i < n; ++i) {
      const double f = a[static_cast<std::size_t>(i) * n + k] / piv;
      for (std::uint32_t j = k; j < n; ++j)
        a[static_cast<std::size_t>(i) * n + j] -=
            f * a[static_cast<std::size_t>(k) * n + j];
      b[i] -= f * b[k];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::uint32_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::uint32_t j = ii + 1; j < n; ++j)
      s -= a[static_cast<std::size_t>(ii) * n + j] * x[j];
    x[ii] = s / a[static_cast<std::size_t>(ii) * n + ii];
  }
  return x;
}

double gauss_error(const GaussResult& r, std::uint32_t n, std::uint64_t seed) {
  const std::vector<double> ref = gauss_reference(n, seed);
  double e = 0.0;
  for (std::uint32_t i = 0; i < n; ++i)
    e = std::max(e, std::fabs(ref[i] - r.solution[i]));
  return e;
}

// ---------------------------------------------------------------------------
// Uniform System version.
// ---------------------------------------------------------------------------

GaussResult gauss_us(sim::Machine& m, const GaussConfig& cfg) {
  const std::uint32_t n = cfg.n;
  const std::size_t row_bytes = (static_cast<std::size_t>(n) + 1) * 8;

  chrys::Kernel k(m);
  us::UsConfig ucfg;
  ucfg.processors = cfg.processors;
  ucfg.memory_nodes = cfg.memory_nodes;
  us::UniformSystem us(k, ucfg);
  const std::uint32_t procs = us.processors();

  GaussResult result;
  std::vector<double> a, b;
  generate_system(n, cfg.seed, a, b);

  us.run_main([&] {
    // Rows scattered over the memory nodes: row i holds a[i][*] then b[i].
    std::vector<sim::PhysAddr> rows = us.scatter_rows(n, row_bytes);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::vector<double> row(n + 1);
      std::memcpy(row.data(), &a[static_cast<std::size_t>(i) * n], n * 8);
      row[n] = b[i];
      m.poke_bytes(rows[i], row.data(), row_bytes);  // untimed distribution
    }

    // Per-worker pivot-row cache: the standard US copy-to-local idiom.
    std::vector<std::int64_t> cached_pivot(procs, -1);
    std::vector<std::vector<double>> pivot_local(
        procs, std::vector<double>(n + 1));
    std::vector<std::vector<double>> scratch(procs,
                                             std::vector<double>(n + 1));

    const sim::Time t0 = m.now();
    m.stats().reset();

    for (std::uint32_t kk = 0; kk < n - 1; ++kk) {
      const std::uint32_t first = kk + 1;
      const std::uint32_t span = n - first;
      const std::uint32_t chunks = std::min(procs, span);
      us.for_all(0, chunks, [&, kk, first, span, chunks](us::TaskCtx& c) {
        const std::uint32_t w = c.worker;
        // Fetch the pivot row once per worker per pivot.
        if (cached_pivot[w] != static_cast<std::int64_t>(kk)) {
          c.us.copy_to_local(pivot_local[w].data(), rows[kk], row_bytes);
          cached_pivot[w] = kk;
        }
        const std::vector<double>& piv = pivot_local[w];
        std::vector<double>& local = scratch[w];
        // This chunk's rows: first + arg, first + arg + chunks, ...
        for (std::uint32_t r = first + c.arg; r < n; r += chunks) {
          c.us.copy_to_local(local.data(), rows[r], row_bytes);
          const double f = local[kk] / piv[kk];
          for (std::uint32_t j = kk; j <= n; ++j) local[j] -= f * piv[j];
          c.m.flops(2 * (n - kk) + 2);
          c.us.copy_from_local(rows[r], local.data(), row_bytes);
        }
      });
    }

    // Back substitution: the serial component, charged to the main process.
    std::vector<double> x(n, 0.0);
    std::vector<double> row(n + 1);
    for (std::uint32_t ii = n; ii-- > 0;) {
      us.copy_to_local(row.data(), rows[ii], row_bytes);
      double s = row[n];
      for (std::uint32_t j = ii + 1; j < n; ++j) s -= row[j] * x[j];
      m.flops(2 * (n - ii) + 1);
      x[ii] = s / row[ii];
    }

    result.elapsed = m.now() - t0;
    result.solution = x;
  });

  for (const auto& s : m.stats().node) {
    result.remote_refs += s.remote_refs;
    result.block_words += s.block_words;
    result.queue_ns += s.queue_ns;
  }
  return result;
}

// ---------------------------------------------------------------------------
// SMP (message passing) version.
// ---------------------------------------------------------------------------

GaussResult gauss_smp(sim::Machine& m, const GaussConfig& cfg) {
  const std::uint32_t n = cfg.n;
  chrys::Kernel k(m);
  const std::uint32_t procs =
      cfg.processors == 0 ? m.nodes() : std::min(cfg.processors, m.nodes());

  GaussResult result;
  std::vector<double> a, b;
  generate_system(n, cfg.seed, a, b);

  k.create_process(0, [&] {
    // Interleaved row ownership: member w owns rows r with r % procs == w.
    // Rows live in each member's local memory (host-side buffers model the
    // member's local heap; arithmetic time is charged via flops()).
    std::vector<std::vector<std::vector<double>>> mine(procs);
    for (std::uint32_t w = 0; w < procs; ++w) {
      for (std::uint32_t r = w; r < n; r += procs) {
        std::vector<double> row(n + 1);
        std::memcpy(row.data(), &a[static_cast<std::size_t>(r) * n], n * 8);
        row[n] = b[r];
        mine[w].push_back(std::move(row));
      }
    }

    const sim::Time t0 = m.now();
    m.stats().reset();

    smp::Family fam(
        k, smp::Topology::complete(procs),
        [&](smp::Member& me) {
          const std::uint32_t w = me.index();
          auto& rows_w = mine[w];
          std::vector<double> pivot(n + 1);
          auto row_of = [&](std::uint32_t r) -> std::vector<double>& {
            return rows_w[r / procs];
          };
          // Broadcasts from different owners can arrive out of order (owner
          // k+1 races owner k's tail sends); stash early arrivals by tag.
          std::unordered_map<std::uint32_t, smp::Message> stash;
          auto recv_tag = [&](std::uint32_t want) {
            auto it = stash.find(want);
            if (it != stash.end()) {
              smp::Message msg = std::move(it->second);
              stash.erase(it);
              return msg;
            }
            while (true) {
              smp::Message msg = me.receive();
              if (msg.tag == want) return msg;
              stash.emplace(msg.tag, std::move(msg));
            }
          };
          for (std::uint32_t kk = 0; kk < n - 1; ++kk) {
            if (kk % procs == w) {
              // I own the pivot row: broadcast it (serialized at me —
              // this is the P*N message volume).
              pivot = row_of(kk);
              for (std::uint32_t d = 0; d < procs; ++d)
                if (d != w)
                  me.send(d, kk, pivot.data(), (n + 1) * 8);
            } else if (procs > 1) {
              smp::Message msg = recv_tag(kk);
              std::memcpy(pivot.data(), msg.payload.data(), (n + 1) * 8);
            }
            // Update my rows below the pivot.
            for (std::uint32_t r = kk + 1; r < n; ++r) {
              if (r % procs != w) continue;
              std::vector<double>& row = row_of(r);
              const double f = row[kk] / pivot[kk];
              for (std::uint32_t j = kk; j <= n; ++j)
                row[j] -= f * pivot[j];
              m.flops(2 * (n - kk) + 2);
            }
          }
          // Funnel the reduced rows to member 0 for back substitution.
          if (w != 0) {
            for (std::uint32_t r = w; r < n; r += procs)
              me.send(0, 0x10000 + r, row_of(r).data(), (n + 1) * 8);
          } else {
            std::vector<std::vector<double>> full(n);
            for (std::uint32_t r = 0; r < n; r += procs)
              full[r] = row_of(r);
            for (std::uint32_t r = 0; r < n; ++r) {
              if (r % procs == 0) continue;
              smp::Message msg = recv_tag(0x10000 + r);
              full[r].resize(n + 1);
              std::memcpy(full[r].data(), msg.payload.data(), (n + 1) * 8);
            }
            std::vector<double> x(n, 0.0);
            for (std::uint32_t ii = n; ii-- > 0;) {
              double s = full[ii][n];
              for (std::uint32_t j = ii + 1; j < n; ++j)
                s -= full[ii][j] * x[j];
              m.flops(2 * (n - ii) + 1);
              x[ii] = s / full[ii][ii];
            }
            result.solution = x;
          }
        });
    fam.join();
    result.elapsed = m.now() - t0;
    result.messages = fam.messages_sent();
  });
  m.run();

  for (const auto& s : m.stats().node) {
    result.remote_refs += s.remote_refs;
    result.block_words += s.block_words;
    result.queue_ns += s.queue_ns;
  }
  return result;
}

}  // namespace bfly::apps
