// Parallel game-tree search (Section 3.1): "we have running a large
// checkers-playing program (written in Lynx), that uses a parallel version
// of alpha-beta search" (after Fishburn & Finkel's Arachne work).
//
// The game is synthetic — a deterministic uniform tree whose leaf values
// are hashes of the move path — so the search behaviour (cutoffs, move
// ordering, search overhead) is real while the rules stay out of the way.
// The parallel version splits the root moves across Uniform System tasks
// that share the alpha bound through shared memory: latecomers benefit
// from earlier tasks' cutoffs, but speculative subtrees still cost extra
// nodes — the classic search-overhead tradeoff.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"

namespace bfly::apps {

struct GameConfig {
  std::uint32_t depth = 6;
  std::uint32_t branching = 8;
  std::uint64_t seed = 1234;
};

struct SearchResult {
  sim::Time elapsed = 0;
  int value = 0;                 ///< minimax value of the root
  std::uint32_t best_move = 0;
  std::uint64_t nodes = 0;       ///< nodes visited (search overhead shows here)
};

/// Serial alpha-beta on the host (the reference answer and node count).
SearchResult alphabeta_reference(const GameConfig& cfg);

/// Root-split parallel alpha-beta with a shared alpha bound.
SearchResult alphabeta_parallel(sim::Machine& m, const GameConfig& cfg,
                                std::uint32_t processors);

}  // namespace bfly::apps
