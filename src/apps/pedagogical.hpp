// Pedagogical applications from class projects (Section 3.1): N-queens by
// work-queue backtracking and the nondeterministic knight's tour that the
// debugging research (Instant Replay) studied.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace bfly::apps {

struct QueensResult {
  sim::Time elapsed = 0;
  std::uint64_t solutions = 0;
};

/// Count all N-queens placements using Uniform System tasks (one per
/// first-row column, each exploring its subtree).
QueensResult queens(sim::Machine& m, std::uint32_t n,
                    std::uint32_t processors);
std::uint64_t queens_reference(std::uint32_t n);

struct KnightResult {
  sim::Time elapsed = 0;
  bool found = false;
  std::vector<std::uint8_t> tour;  ///< visit order per square, 1-based
  std::uint32_t winner = 0;        ///< which worker found it (timing-dependent)
};

/// Parallel nondeterministic knight's tour on a `size` x `size` board:
/// workers race to extend partial tours from a shared work pool; WHICH tour
/// is found (and by whom) depends on timing — the workload Instant Replay
/// was built to tame.  `jitter_seed` perturbs worker timing.
KnightResult knights_tour(sim::Machine& m, std::uint32_t size,
                          std::uint32_t processors, std::uint64_t jitter_seed);

}  // namespace bfly::apps
