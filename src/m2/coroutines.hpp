// Modula-2 style coroutines (Olson, BPR 4; Section 3.2).
//
// Rochester's second Butterfly language was Modula-2, whose SYSTEM module
// exposes NEWPROCESS/TRANSFER: explicit coroutine creation and control
// transfer inside one (Chrysalis) process.  The paper: packages "such as
// Ant Farm ... in which the fine-grain pseudo-parallelism of coroutines
// plays a central role", and SMP for Modula-2 "provides a model of true
// parallelism with heavyweight processes and messages that nicely
// complements the built-in model of pseudo-parallelism with coroutines and
// shared memory".
//
// Unlike Ant Farm's scheduled threads, control transfer here is fully
// explicit: transfer(c) suspends the caller and resumes c, exactly like
// Modula-2's TRANSFER.  Everything stays inside the creating process — a
// transfer is pure pseudo-parallelism, a few tens of 68000 microseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chrysalis/kernel.hpp"

namespace bfly::m2 {

class CoroutineSystem;

class Coroutine {
 public:
  bool finished() const { return finished_; }
  std::uint32_t id() const { return id_; }

 private:
  friend class CoroutineSystem;
  std::uint32_t id_ = 0;
  sim::Fiber* fiber_ = nullptr;
  std::function<void()> body;
  bool started_ = false;
  bool finished_ = false;
};

/// One per Chrysalis process; create it on the process's stack.  The
/// process's own thread of control is coroutine 0 ("main").
class CoroutineSystem {
 public:
  explicit CoroutineSystem(chrys::Kernel& k);
  ~CoroutineSystem();

  /// NEWPROCESS: create a coroutine (suspended until transferred to).
  Coroutine* new_coroutine(std::function<void()> body);

  /// TRANSFER: suspend the caller, resume `to`.  Transferring to a
  /// finished coroutine throws.  When a coroutine's body returns, control
  /// goes back to main.
  void transfer(Coroutine* to);

  /// The currently executing coroutine (main() when none).
  Coroutine* current() { return current_; }
  Coroutine* main() { return &main_; }

  std::uint64_t transfers() const { return transfers_; }

 private:
  chrys::Kernel& k_;
  sim::Machine& m_;
  sim::NodeId node_;
  Coroutine main_;
  std::vector<std::unique_ptr<Coroutine>> coros_;
  Coroutine* current_ = nullptr;
  std::uint64_t transfers_ = 0;
};

}  // namespace bfly::m2
