#include "m2/coroutines.hpp"

namespace bfly::m2 {

namespace {
// A coroutine TRANSFER on the 68000: save/restore registers and stack
// pointer — a dozen microseconds.
constexpr sim::Time kTransferCost = 12 * sim::kMicrosecond;
}  // namespace

CoroutineSystem::CoroutineSystem(chrys::Kernel& k)
    : k_(k), m_(k.machine()), node_(k.self().node()) {
  main_.id_ = 0;
  main_.fiber_ = sim::Fiber::current();
  main_.started_ = true;  // main is already running
  current_ = &main_;
}

CoroutineSystem::~CoroutineSystem() {
  // Suspended coroutines die with the system (Modula-2 semantics: they are
  // just stacks inside the process).  Abandon their fibers so the machine
  // does not count them as deadlocked.
  for (auto& c : coros_)
    if (c->started_ && !c->finished_ && c->fiber_ != nullptr)
      m_.abandon(c->fiber_);
}

Coroutine* CoroutineSystem::new_coroutine(std::function<void()> body) {
  auto c = std::make_unique<Coroutine>();
  c->id_ = static_cast<std::uint32_t>(coros_.size() + 1);
  c->body = std::move(body);
  coros_.push_back(std::move(c));
  m_.charge(30 * sim::kMicrosecond);  // stack allocation
  return coros_.back().get();
}

void CoroutineSystem::transfer(Coroutine* to) {
  if (to == nullptr || to->finished_)
    throw chrys::ThrowSignal{chrys::kThrowBadObject,
                             to != nullptr ? to->id_ : 0};
  Coroutine* from = current_;
  if (to == from) return;
  m_.charge(kTransferCost);
  ++transfers_;
  current_ = to;
  if (!to->started_) {
    to->started_ = true;
    Coroutine* tp = to;
    to->fiber_ = m_.spawn_parked(node_, [this, tp] {
      tp->body();
      tp->finished_ = true;
      // Falling off the end returns control to main (Modula-2 would crash
      // the program; returning to main is the friendlier convention).
      current_ = &main_;
      m_.wakeup(main_.fiber_);
    });
  }
  m_.wakeup(to->fiber_);
  m_.park();
  // Resumed: someone transferred back to `from`.
  current_ = from;
}

}  // namespace bfly::m2
