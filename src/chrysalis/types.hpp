// Basic identifiers for the Chrysalis object model.
//
// All Chrysalis abstractions — processes, memory objects, events, dual
// queues — are objects named by a machine-global Oid.  As on the real
// system, names are easy to guess (they are sequential), and any process
// can operate on any object it can name: the protection loophole the paper
// calls out in Section 2.2 is faithfully present.
#pragma once

#include <cstdint>

namespace bfly::chrys {

using Oid = std::uint32_t;

inline constexpr Oid kNoObject = 0;

enum class ObjKind : std::uint8_t {
  kProcess,
  kMemoryObject,
  kEvent,
  kDualQueue,
};

/// A process virtual address: 8-bit segment number, 16-bit offset.
/// A process can address at most 256 segments of at most 64 KB each —
/// the 16 MB ceiling the paper complains about.
struct VirtAddr {
  std::uint32_t raw = 0;

  VirtAddr() = default;
  VirtAddr(std::uint32_t segment, std::uint32_t offset)
      : raw((segment << 16) | (offset & 0xffffu)) {}

  std::uint32_t segment() const { return (raw >> 16) & 0xffu; }
  std::uint32_t offset() const { return raw & 0xffffu; }

  VirtAddr plus(std::uint32_t delta) const {
    VirtAddr v;
    v.raw = raw + delta;
    return v;
  }
  bool operator==(const VirtAddr&) const = default;
};

/// Error codes carried by the Chrysalis catch/throw mechanism.
enum ThrowCode : int {
  kThrowNone = 0,
  kThrowBadObject = 1,
  kThrowNotOwner = 2,
  kThrowNoSars = 3,
  kThrowAddressSpaceFull = 4,
  kThrowSegmentFault = 5,
  kThrowQueueFull = 6,
  kThrowOutOfMemory = 7,
  kThrowNotConnected = 8,    ///< SMP: destination not in the family topology
  kThrowReplayDiverged = 9,  ///< Instant Replay: execution left the log
  kThrowNodeDead = 10,       ///< operation needed a node that has died
  kThrowBrokenStream = 11,   ///< NET: the stream's writer exited or died
  kThrowNetUnreachable = 12, ///< no healthy switch path / partition window
  kThrowUser = 100,          ///< first code available to applications
};

}  // namespace bfly::chrys
