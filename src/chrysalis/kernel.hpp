// The Chrysalis operating system (Section 2.2 of the paper), rebuilt on the
// simulated Butterfly.
//
// Chrysalis is a protected subroutine library: processes are heavyweight,
// bound to one node, scheduled non-preemptively per node; memory objects
// come in 16 standard sizes and are mapped into a process's segmented
// address space through SARs (a scarce per-node resource handed out in
// buddy-system blocks); events and dual queues are microcoded
// synchronization primitives costing tens of microseconds; catch/throw is
// the exception mechanism (~70 us per protected block).  The object model
// is a uniform ownership hierarchy with reference-counted reclamation — and
// the "give it to the system" escape hatch that makes Chrysalis leak
// storage, which we model observably.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "chrysalis/types.hpp"
#include "sim/machine.hpp"

namespace bfly::chrys {

class Kernel;

/// Thrown by Kernel::throw_err and caught by Kernel::catch_block — the
/// MacLISP-style catch/throw of Chrysalis.
struct ThrowSignal {
  int code;
  std::uint32_t datum;
};

/// A Chrysalis process: a heavyweight entity with its own segmented address
/// space, bound to one node for its whole life (processes do not migrate).
class Process {
 public:
  enum class State { kReady, kRunning, kBlocked, kExited };

  Oid oid() const { return oid_; }
  sim::NodeId node() const { return node_; }
  State state() const { return state_; }
  bool faulted() const { return faulted_; }
  /// True when the process died with its node (a FaultPlan kill).
  bool killed() const { return killed_; }
  const std::string& name() const { return name_; }

  /// Number of segment slots (SARs) this process owns.
  std::uint32_t sar_block() const { return sar_block_; }
  /// While blocked: the event or dual queue this process is waiting on
  /// (kNoObject otherwise).  Moviola uses this for its deadlock view.
  Oid waiting_on() const { return waiting_on_; }
  /// Segments currently mapped.
  std::uint32_t mapped_segments() const;

 private:
  friend class Kernel;
  Oid oid_ = kNoObject;
  sim::NodeId node_ = 0;
  State state_ = State::kReady;
  bool faulted_ = false;
  std::string name_;
  sim::Fiber* fiber_ = nullptr;
  bool wakeup_pending_ = false;  // post arrived while deciding to block
  bool killed_ = false;          // node died under this process
  bool timed_out_ = false;       // last timed wait expired without data
  std::uint64_t wait_seq_ = 0;   // blocking-wait generation (stale-timer guard)
  std::uint32_t explore_prio_ = 0;  // PCT priority (schedule exploration)
  std::uint32_t partition_ = 0xffffffffu;  // kWholeMachine
  std::uint32_t sar_block_ = 0;
  std::vector<Oid> segments_;      // segment index -> memory object (or 0)
  std::uint32_t wait_datum_ = 0;   // datum delivered by event/dq post
  Oid waiting_on_ = kNoObject;     // object this process is blocked on
  // Dual queue whose datum is in flight to this process: delivered by an
  // enqueuer but not yet consumed by the dequeue call.  If the process dies
  // inside that window the kernel re-queues the datum (at-least-once).
  Oid dq_handoff_from_ = kNoObject;
};

class Kernel {
 public:
  explicit Kernel(sim::Machine& m);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Machine& machine() { return m_; }
  sim::Time now() const { return m_.now(); }

  // --- Processes -------------------------------------------------------------

  /// Create a process on `node` whose body is `main`.  `max_segments` sizes
  /// the SAR block (rounded up to 8/16/32/64/128/256).  Charged to the
  /// calling process: milliseconds of local work plus a serialized critical
  /// section on the global process-template resource — the serialization
  /// the Crowd Control package exists to mitigate.
  Oid create_process(sim::NodeId node, std::function<void()> main,
                     std::string name = {}, std::uint32_t max_segments = 32);

  /// The process running on the calling fiber.
  Process& self();
  bool on_process() const;

  /// Voluntarily give up the CPU to another ready process on this node.
  void yield();
  /// Block the calling process for `ns` of simulated time (CPU released).
  void delay(sim::Time ns);

  /// Number of processes that have not exited.
  std::size_t live_processes() const { return live_processes_; }

  /// Cheap liveness bitmap lookup: can `node` still run code and serve
  /// memory?  (Delegates to the machine's fault state.)
  bool node_alive(sim::NodeId node) const { return m_.node_alive(node); }
  /// Processes that died with their node.
  std::size_t killed_processes() const { return killed_processes_; }
  /// Snapshot of blocked processes: (name, oid, object waited on).
  struct BlockedInfo {
    std::string name;
    Oid process;
    Oid waiting_on;
  };
  std::vector<BlockedInfo> blocked_processes() const;
  /// One line per node with a non-idle scheduler: the running process and
  /// the ready queue, in dispatch order.  Diagnostic companion to
  /// blocked_processes(): a wedged run is explained by who is blocked plus
  /// who is ready-but-never-dispatched.
  std::string sched_snapshot() const;
  /// The process running `f`'s code, or kNoObject for a non-process fiber
  /// (moviola maps wait-observer fibers back to kernel objects with this).
  Oid process_of(sim::Fiber* f) const;

  // --- Schedule exploration (PCT-style; see src/moviola) ---------------------
  // One seed = one deterministic alternative schedule.  Every process gets
  // a random priority from a dedicated PRNG; the per-node dispatcher runs
  // the highest-priority ready process (instead of FIFO) and a dual queue
  // hands its datum to the highest-priority waiter (instead of the oldest);
  // at `change_points` pre-drawn dispatch steps the chosen process's
  // priority is re-drawn, so a single unlucky priority assignment cannot
  // hide bugs that need a mid-run inversion (the PCT insight: most
  // order-dependent bugs have small depth d, and k = d-1 change points
  // suffice).  Exploration never invents schedules the kernel could not
  // produce — it only re-orders choices that were already untimed ties —
  // and it draws from its own PRNG, so the machine's seeded behaviour and
  // Instant Replay recording are unaffected.  Off (the default) leaves
  // dispatch byte-identical to a kernel built before this hook existed.

  /// Enable perturbed dispatch for this kernel's whole lifetime.
  /// `horizon_steps` spreads the change points over the expected number of
  /// dispatch decisions (they are drawn uniformly below it).
  void set_schedule_exploration(std::uint64_t seed,
                                std::uint32_t change_points = 8,
                                std::uint64_t horizon_steps = 1 << 14);
  bool exploring() const { return explore_; }
  /// Dispatch decisions taken so far under exploration (diagnostics).
  std::uint64_t dispatch_steps() const { return dispatch_steps_; }

  // --- Software partitioning (Section 3.3: "a local facility for software
  // partitioning (to subdivide a Butterfly into smaller virtual machines)
  // was brought up prior to the release of the BBN version") -----------------

  using PartitionId = std::uint32_t;
  static constexpr PartitionId kWholeMachine = 0xffffffffu;

  /// Carve a virtual machine out of the given nodes.  A process created
  /// inside a partition may only create processes on that partition's
  /// nodes (ThrowSignal{kThrowBadObject} otherwise) — the fences between
  /// users sharing one Butterfly.
  PartitionId create_partition(std::vector<sim::NodeId> nodes);
  const std::vector<sim::NodeId>& partition_nodes(PartitionId p) const;
  /// Create the root process of a partition on its index-th node.
  Oid enter_partition(PartitionId p, std::uint32_t index,
                      std::function<void()> main, std::string name = {});
  /// Partition of the calling process (kWholeMachine outside any).
  PartitionId current_partition();
  /// SARs still unallocated on a node.
  std::uint32_t free_sars(sim::NodeId node) const { return sars_free_[node]; }

  // --- Memory objects ---------------------------------------------------------

  /// Allocate a memory object of at least `bytes` on `node`.  Rounded up to
  /// one of the 16 standard sizes; the fragment at the end is inaccessible
  /// (tracked in wasted_bytes()).  Owned by the calling process (or the
  /// system when called off-process).
  Oid make_memory_object(sim::NodeId node, std::size_t bytes);

  /// The physical base/size of a memory object (for layers that bypass the
  /// segmented address space, as tuned Butterfly code did via the PNC).
  sim::PhysAddr memobj_base(Oid mo) const;
  std::size_t memobj_size(Oid mo) const;
  sim::NodeId memobj_node(Oid mo) const;

  // --- Object model ------------------------------------------------------------

  /// Delete an object; subsidiary objects (children in the ownership
  /// hierarchy) are reclaimed recursively.
  void delete_object(Oid oid);
  /// Transfer ownership to "the system": the object will survive its
  /// creator's deletion.  This is how Chrysalis programs leak storage.
  void give_to_system(Oid oid);
  bool object_alive(Oid oid) const;
  ObjKind object_kind(Oid oid) const;

  /// Bytes held by live memory objects.
  std::size_t live_bytes() const { return live_bytes_; }
  /// Bytes lost to standard-size rounding.
  std::size_t wasted_bytes() const { return wasted_bytes_; }
  /// Bytes in system-owned memory objects whose creating process has exited:
  /// storage nothing will ever reclaim.
  std::size_t leaked_bytes() const { return leaked_bytes_; }

  // --- Address space (SAR management) ------------------------------------------

  /// Map a memory object into the calling process's address space; returns
  /// the segment number.  Costs over 1 ms (Section 2.1).
  std::uint32_t map_object(Oid mo);
  void unmap_segment(std::uint32_t segment);
  /// Which memory object a segment of the calling process maps (kNoObject
  /// when unmapped).
  Oid segment_object(std::uint32_t segment);

  /// Timed virtual-memory access through the calling process's segments.
  template <typename T>
  T vread(VirtAddr va) {
    return m_.read<T>(translate(va, sizeof(T)));
  }
  template <typename T>
  void vwrite(VirtAddr va, T v) {
    m_.write<T>(translate(va, sizeof(T)), v);
  }
  std::uint32_t v_fetch_add(VirtAddr va, std::uint32_t delta) {
    return m_.fetch_add_u32(translate(va, 4), delta);
  }
  std::uint32_t v_test_and_set(VirtAddr va) {
    return m_.test_and_set(translate(va, 4));
  }

  /// Translate a virtual address in the calling process; throws
  /// ThrowSignal{kThrowSegmentFault} on unmapped segment / bad offset.
  sim::PhysAddr translate(VirtAddr va, std::size_t bytes);

  // --- Events -------------------------------------------------------------------

  /// An event is a binary semaphore on which only `owner` can wait.
  Oid make_event(Oid owner_process = kNoObject);
  /// Post with a 32-bit datum.  A second post before the wait overwrites
  /// the first (binary semantics).
  void event_post(Oid ev, std::uint32_t datum = 0);
  /// Wait (owner only); returns the posted datum.
  std::uint32_t event_wait(Oid ev);
  bool event_pending(Oid ev) const;

  // --- Dual queues ----------------------------------------------------------------

  /// A dual queue holds either data from posts or waiting processes, never
  /// both.  capacity 0 = unbounded.
  Oid make_dual_queue(std::size_t capacity = 0);
  void dq_enqueue(Oid dq, std::uint32_t datum);
  /// Enqueue without charging simulated time even from process context.
  /// For host-side bookkeeping tokens (EOF sentinels, recovery completions)
  /// that must not perturb the event stream of a healthy run.
  void dq_enqueue_uncharged(Oid dq, std::uint32_t datum);
  std::uint32_t dq_dequeue(Oid dq);
  bool dq_try_dequeue(Oid dq, std::uint32_t* out);
  /// Uncharged, non-blocking pop; recovery code draining a dead process's
  /// queue must not bill simulated time to anyone.
  bool dq_try_dequeue_uncharged(Oid dq, std::uint32_t* out);
  /// Dequeue with a deadline: returns false if `timeout` elapses first.
  /// The microcoded queues had no such operation; recovery code needs one,
  /// so it is built from a timer event plus a wait-generation counter.
  bool dq_dequeue_for(Oid dq, sim::Time timeout, std::uint32_t* out);
  std::size_t dq_depth(Oid dq) const;

  // --- Catch / throw ---------------------------------------------------------------

  /// Run `body` in a protected block.  Returns 0 on normal completion or
  /// the thrown code.  Entering and leaving costs ~70 us total, which is
  /// why tuned programs keep catch blocks off their critical path.
  int catch_block(const std::function<void()>& body,
                  std::uint32_t* datum_out = nullptr);
  [[noreturn]] void throw_err(int code, std::uint32_t datum = 0);

 private:
  struct EventObj {
    Oid owner = kNoObject;
    bool pending = false;
    bool waiting = false;
    std::uint32_t datum = 0;
  };
  struct DualQueueObj {
    std::size_t capacity = 0;
    std::deque<std::uint32_t> data;
    std::deque<Oid> waiters;
  };
  struct MemObj {
    sim::PhysAddr base;
    std::size_t size = 0;       // standard (rounded) size
    std::size_t requested = 0;  // what the caller asked for
  };
  struct ObjRec {
    ObjKind kind;
    Oid owner = kNoObject;       // owning object
    Oid creator = kNoObject;     // process that created it (leak accounting)
    bool system_owned = false;
    std::vector<Oid> children;
    std::variant<std::monostate, EventObj, DualQueueObj, MemObj,
                 std::unique_ptr<Process>>
        u;
  };
  struct NodeSched {
    Process* current = nullptr;
    std::deque<Process*> ready;
  };

  ObjRec& rec(Oid oid);
  const ObjRec& rec(Oid oid) const;
  Process& proc(Oid oid);
  Oid new_object(ObjKind kind, Oid owner);
  void adopt(Oid parent, Oid child);
  void orphan(Oid child);

  void make_ready(Process& p);
  void dispatch_next(sim::NodeId node);
  /// Highest-priority live waiter of `q` (exploration), or the oldest
  /// (FIFO) when exploration is off; kNoObject when none is live.  Pops the
  /// chosen waiter from q.waiters.
  Oid pick_waiter(DualQueueObj& q);
  /// Re-draw `p`'s priority if the current dispatch step is a change point.
  void maybe_change_priority(Process& p);
  /// Block the calling process; returns when made ready and dispatched.
  void block_self();
  void exit_self();
  /// Exit bookkeeping for a process that died with its node: no timed
  /// operations, no object reclamation (the crash ran nothing gracefully).
  void kill_exit(Process& p);
  void handle_node_death(sim::NodeId n);
  /// Uncharged delivery used by recovery paths: hand `datum` to a live
  /// waiter or put it back at the head of the queue.
  void deliver_or_queue(Oid dq, std::uint32_t datum);
  void charge_if_on_fiber(sim::Time ns);

  static std::size_t standard_size(std::size_t bytes);
  static std::uint32_t sar_block_for(std::uint32_t max_segments);

  sim::Machine& m_;
  std::unordered_map<Oid, ObjRec> objects_;
  Oid next_oid_ = 1;
  std::unordered_map<sim::Fiber*, Process*> by_fiber_;
  std::vector<NodeSched> sched_;
  std::vector<std::uint32_t> sars_free_;
  sim::Time template_busy_until_ = 0;  // serialized process-template resource
  // Schedule exploration (all state untouched when explore_ is false).
  bool explore_ = false;
  sim::Rng explore_rng_{0};
  std::vector<std::uint64_t> change_steps_;  // sorted dispatch-step indices
  std::size_t change_cursor_ = 0;
  std::uint64_t dispatch_steps_ = 0;
  std::vector<std::vector<sim::NodeId>> partitions_;
  std::size_t live_processes_ = 0;
  std::size_t killed_processes_ = 0;
  std::uint64_t death_observer_ = 0;
  std::size_t live_bytes_ = 0;
  std::size_t wasted_bytes_ = 0;
  std::size_t leaked_bytes_ = 0;
};

}  // namespace bfly::chrys
