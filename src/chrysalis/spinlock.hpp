// Spin locks built from the PNC's atomic memory operations (Section 2.2:
// "Atomic memory operations can be used to implement spin locks").
//
// Busy-waiting on a shared location is the common Butterfly synchronization
// technique the paper warns about: waiting processors accomplish no useful
// work, and every probe steals memory cycles from the node holding the lock
// word.  The probe interval is configurable because the paper notes that
// "programs can be highly sensitive to the amount of time spent between
// attempts to set a lock" — and an optional exponential backoff implements
// the standard mitigation: each failed probe doubles the wait (up to a cap),
// trading handoff latency for probe pressure on the home module.
//
// Spin and acquisition counts aggregate into MachineStats (lock_spins /
// lock_acquisitions) so benches read one machine-wide number instead of
// keeping every lock instance alive; the per-instance getters remain for
// targeted measurements.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/machine.hpp"

namespace bfly::chrys {

class SpinLock {
 public:
  /// The lock word must be an allocated 4-byte cell initialized to 0.
  /// `backoff_max` = 0 disables backoff (every probe waits exactly
  /// `probe_interval`); otherwise the wait doubles per failed probe up to
  /// the cap and resets on acquisition.
  SpinLock(sim::Machine& m, sim::PhysAddr cell,
           sim::Time probe_interval = 5 * sim::kMicrosecond,
           sim::Time backoff_max = 0)
      : m_(m),
        cell_(cell),
        probe_interval_(probe_interval),
        backoff_max_(backoff_max) {}

  /// Acquire by test-and-set; every failed probe spins (and steals cycles
  /// from the home module of the lock word).  A transient memory fault on a
  /// probe is just a failed probe — spin again.  (A *dead* home node still
  /// throws: that lock is gone for good.)
  void acquire() {
    sim::Time wait = probe_interval_;
    for (;;) {
      try {
        if (m_.test_and_set(cell_) == 0) break;
      } catch (const sim::MemoryFaultError&) {
      }
      ++spins_;
      ++m_.stats().lock_spins;
      m_.observe_spin(sim::chan_of(cell_));
      m_.charge(wait);
      if (backoff_max_ != 0) wait = std::min(wait * 2, backoff_max_);
    }
    ++acquisitions_;
    ++m_.stats().lock_acquisitions;
    m_.observe_lock_acquire(sim::chan_of(cell_));
  }

  bool try_acquire() {
    try {
      if (m_.test_and_set(cell_) == 0) {
        ++acquisitions_;
        ++m_.stats().lock_acquisitions;
        m_.observe_lock_acquire(sim::chan_of(cell_));
        return true;
      }
    } catch (const sim::MemoryFaultError&) {
    }
    ++spins_;
    ++m_.stats().lock_spins;
    m_.observe_spin(sim::chan_of(cell_));
    return false;
  }

  void release() {
    // A transient memory fault on the release write would leave the lock
    // held forever and wedge every spinner; the PNC retries the store.
    m_.observe_lock_release(sim::chan_of(cell_));
    for (;;) {
      try {
        m_.write<std::uint32_t>(cell_, 0);
        return;
      } catch (const sim::MemoryFaultError&) {
      }
    }
  }

  std::uint64_t acquisitions() const { return acquisitions_; }
  /// Failed probes: a direct measure of busy-wait contention.
  std::uint64_t spins() const { return spins_; }

 private:
  sim::Machine& m_;
  sim::PhysAddr cell_;
  sim::Time probe_interval_;
  sim::Time backoff_max_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t spins_ = 0;
};

}  // namespace bfly::chrys
