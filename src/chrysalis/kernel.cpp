#include "chrysalis/kernel.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace bfly::chrys {

namespace {
// The 16 standard memory-object sizes (Section 2.2 footnote 3).  An
// odd-sized object is rounded up, with an inaccessible fragment at the end.
constexpr std::array<std::size_t, 16> kStandardSizes = {
    0,         256,       512,       1024,     2048,      4096,
    8192,      12 * 1024, 16 * 1024, 24 * 1024, 32 * 1024, 40 * 1024,
    48 * 1024, 56 * 1024, 60 * 1024, 64 * 1024};
}  // namespace

Kernel::Kernel(sim::Machine& m)
    : m_(m),
      sched_(m.nodes()),
      sars_free_(m.nodes(), m.config().sars_per_node) {
  // Registered first so the kernel's view is consistent before any higher
  // layer's death observer runs.
  death_observer_ =
      m_.on_node_death([this](sim::NodeId n) { handle_node_death(n); });
}

Kernel::~Kernel() { m_.remove_death_observer(death_observer_); }

void Kernel::charge_if_on_fiber(sim::Time ns) {
  if (sim::Fiber::current() != nullptr) m_.charge(ns);
}

// --- Object table ------------------------------------------------------------

Oid Kernel::new_object(ObjKind kind, Oid owner) {
  const Oid oid = next_oid_++;
  ObjRec r;
  r.kind = kind;
  r.owner = owner;
  r.creator = on_process() ? self().oid() : kNoObject;
  objects_.emplace(oid, std::move(r));
  if (owner != kNoObject) adopt(owner, oid);
  return oid;
}

Kernel::ObjRec& Kernel::rec(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) throw ThrowSignal{kThrowBadObject, oid};
  return it->second;
}

const Kernel::ObjRec& Kernel::rec(Oid oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) throw ThrowSignal{kThrowBadObject, oid};
  return it->second;
}

Process& Kernel::proc(Oid oid) {
  ObjRec& r = rec(oid);
  if (r.kind != ObjKind::kProcess) throw ThrowSignal{kThrowBadObject, oid};
  return *std::get<std::unique_ptr<Process>>(r.u);
}

void Kernel::adopt(Oid parent, Oid child) {
  auto it = objects_.find(parent);
  if (it != objects_.end()) it->second.children.push_back(child);
}

void Kernel::orphan(Oid child) {
  ObjRec& c = rec(child);
  if (c.owner == kNoObject) return;
  auto it = objects_.find(c.owner);
  if (it != objects_.end()) {
    auto& kids = it->second.children;
    kids.erase(std::remove(kids.begin(), kids.end(), child), kids.end());
  }
  c.owner = kNoObject;
}

bool Kernel::object_alive(Oid oid) const {
  return objects_.find(oid) != objects_.end();
}

ObjKind Kernel::object_kind(Oid oid) const { return rec(oid).kind; }

void Kernel::give_to_system(Oid oid) {
  orphan(oid);
  rec(oid).system_owned = true;
}

void Kernel::delete_object(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) return;
  // Reclaim subsidiary objects first (uniform ownership hierarchy).
  std::vector<Oid> kids = it->second.children;
  for (Oid k : kids) delete_object(k);
  it = objects_.find(oid);
  if (it == objects_.end()) return;
  ObjRec& r = it->second;
  orphan(oid);
  switch (r.kind) {
    case ObjKind::kMemoryObject: {
      const MemObj& mo = std::get<MemObj>(r.u);
      if (mo.size > 0) m_.free(mo.base, mo.size);
      live_bytes_ -= mo.size;
      wasted_bytes_ -= mo.size - mo.requested;
      break;
    }
    case ObjKind::kProcess: {
      Process& p = *std::get<std::unique_ptr<Process>>(r.u);
      // Deleting a live process is not modelled (external kill); SARs were
      // already refunded at exit.
      assert(p.state_ == Process::State::kExited &&
             "delete_object on a live process");
      (void)p;
      break;
    }
    default:
      break;
  }
  objects_.erase(oid);
}

// --- Memory objects -----------------------------------------------------------

std::size_t Kernel::standard_size(std::size_t bytes) {
  for (std::size_t s : kStandardSizes)
    if (s >= bytes) return s;
  throw ThrowSignal{kThrowOutOfMemory, static_cast<std::uint32_t>(bytes)};
}

Oid Kernel::make_memory_object(sim::NodeId node, std::size_t bytes) {
  const std::size_t size = standard_size(bytes);
  MemObj mo;
  mo.requested = bytes;
  mo.size = size;
  if (size > 0) {
    try {
      mo.base = m_.alloc(node, size);
    } catch (const sim::NodeDeadError&) {
      throw ThrowSignal{kThrowNodeDead, node};
    } catch (const sim::SimError&) {
      throw ThrowSignal{kThrowOutOfMemory, node};
    }
  }
  const Oid owner = on_process() ? self().oid() : kNoObject;
  const Oid oid = new_object(ObjKind::kMemoryObject, owner);
  rec(oid).u = mo;
  live_bytes_ += size;
  wasted_bytes_ += size - bytes;
  charge_if_on_fiber(200 * sim::kMicrosecond);  // Make_Obj kernel call
  return oid;
}

sim::PhysAddr Kernel::memobj_base(Oid mo) const {
  return std::get<MemObj>(rec(mo).u).base;
}
std::size_t Kernel::memobj_size(Oid mo) const {
  return std::get<MemObj>(rec(mo).u).size;
}
sim::NodeId Kernel::memobj_node(Oid mo) const {
  return std::get<MemObj>(rec(mo).u).base.node;
}

// --- Address space --------------------------------------------------------------

std::uint32_t Kernel::sar_block_for(std::uint32_t max_segments) {
  std::uint32_t b = 8;
  while (b < max_segments) b *= 2;
  return std::min<std::uint32_t>(b, 256);
}

std::uint32_t Kernel::map_object(Oid mo) {
  Process& p = self();
  const MemObj& obj = std::get<MemObj>(rec(mo).u);
  (void)obj;
  for (std::uint32_t s = 0; s < p.segments_.size(); ++s) {
    if (p.segments_[s] == kNoObject) {
      p.segments_[s] = mo;
      m_.charge(m_.config().sar_map_ns);
      return s;
    }
  }
  throw ThrowSignal{kThrowAddressSpaceFull, p.oid()};
}

void Kernel::unmap_segment(std::uint32_t segment) {
  Process& p = self();
  if (segment >= p.segments_.size() || p.segments_[segment] == kNoObject)
    throw ThrowSignal{kThrowSegmentFault, segment};
  p.segments_[segment] = kNoObject;
  m_.charge(m_.config().sar_map_ns);
}

Oid Kernel::segment_object(std::uint32_t segment) {
  Process& p = self();
  return segment < p.segments_.size() ? p.segments_[segment] : kNoObject;
}

sim::PhysAddr Kernel::translate(VirtAddr va, std::size_t bytes) {
  Process& p = self();
  const std::uint32_t seg = va.segment();
  if (seg >= p.segments_.size() || p.segments_[seg] == kNoObject)
    throw ThrowSignal{kThrowSegmentFault, va.raw};
  const MemObj& mo = std::get<MemObj>(rec(p.segments_[seg]).u);
  if (va.offset() + bytes > mo.size)
    throw ThrowSignal{kThrowSegmentFault, va.raw};
  return mo.base.plus(va.offset());
}

std::uint32_t Process::mapped_segments() const {
  std::uint32_t n = 0;
  for (Oid s : segments_)
    if (s != kNoObject) ++n;
  return n;
}

// --- Processes ------------------------------------------------------------------

Kernel::PartitionId Kernel::create_partition(std::vector<sim::NodeId> nodes) {
  for (sim::NodeId n : nodes)
    if (n >= m_.nodes()) throw ThrowSignal{kThrowBadObject, n};
  partitions_.push_back(std::move(nodes));
  return static_cast<PartitionId>(partitions_.size() - 1);
}

const std::vector<sim::NodeId>& Kernel::partition_nodes(PartitionId p) const {
  return partitions_.at(p);
}

Kernel::PartitionId Kernel::current_partition() {
  return on_process() ? self().partition_ : kWholeMachine;
}

Oid Kernel::enter_partition(PartitionId p, std::uint32_t index,
                            std::function<void()> main, std::string name) {
  const auto& nodes = partitions_.at(p);
  const Oid oid =
      create_process(nodes[index % nodes.size()], std::move(main),
                     std::move(name));
  proc(oid).partition_ = p;
  return oid;
}

Oid Kernel::create_process(sim::NodeId node, std::function<void()> main,
                           std::string name, std::uint32_t max_segments) {
  if (!m_.node_alive(node)) throw ThrowSignal{kThrowNodeDead, node};
  // Partition fence: a process inside a virtual machine may only create
  // processes on that machine's nodes.
  PartitionId inherited = kWholeMachine;
  if (on_process()) {
    inherited = self().partition_;
    if (inherited != kWholeMachine) {
      const auto& nodes = partitions_[inherited];
      if (std::find(nodes.begin(), nodes.end(), node) == nodes.end())
        throw ThrowSignal{kThrowBadObject, node};
    }
  }
  const std::uint32_t block = sar_block_for(max_segments);
  if (sars_free_[node] < block) throw ThrowSignal{kThrowNoSars, node};
  sars_free_[node] -= block;

  // Creation cost: local work plus a serialized pass over the global
  // process-template resource.  The serial section is a time-domain
  // resource: concurrent creators queue behind one another.
  if (sim::Fiber::current() != nullptr) {
    const auto& cfg = m_.config();
    m_.charge(cfg.proc_create_local_ns);
    const sim::Time start = std::max(m_.now(), template_busy_until_);
    template_busy_until_ = start + cfg.proc_create_serial_ns;
    m_.charge(template_busy_until_ - m_.now());
    // The charges above take milliseconds of simulated time; the target can
    // die in the middle of them.  Re-check so the caller sees the same
    // kThrowNodeDead as a dead-at-entry target, not a raw machine error
    // from the fiber spawn below.
    if (!m_.node_alive(node)) {
      sars_free_[node] += block;
      throw ThrowSignal{kThrowNodeDead, node};
    }
    // Shipping the template to a node we cannot route to fails the same
    // way a reference would; the target may be healthy beyond the cut.
    if (m_.faults_possible() && !m_.reachable(m_.current_node(), node)) {
      sars_free_[node] += block;
      throw ThrowSignal{kThrowNetUnreachable, node};
    }
  }

  auto pp = std::make_unique<Process>();
  Process* p = pp.get();
  if (explore_)
    p->explore_prio_ = static_cast<std::uint32_t>(explore_rng_.next());
  // A live process holds a reference to itself: it is not reclaimed when
  // its creator is deleted (only its exit releases it).
  const Oid oid = new_object(ObjKind::kProcess, kNoObject);
  p->oid_ = oid;
  p->node_ = node;
  p->partition_ = inherited;
  p->name_ = name.empty() ? "proc" + std::to_string(oid) : std::move(name);
  p->sar_block_ = block;
  p->segments_.assign(std::min(block, m_.config().max_segments_per_process),
                      kNoObject);
  p->state_ = Process::State::kReady;

  p->fiber_ = m_.spawn_parked(node, [this, p, body = std::move(main)] {
    // Lifetime span for the whole process; RAII so a FiberKill unwind
    // closes it too.
    sim::TraceSpan span(m_, "chrys", "process", p->oid_);
    // Top-level fault barrier: an uncaught throw terminates the process,
    // as when Chrysalis unwinds to the outermost handler.  Machine faults
    // (dead-node references, parity errors) terminate it the same way.
    try {
      body();
    } catch (const ThrowSignal&) {
      p->faulted_ = true;
    } catch (const sim::NodeDeadError&) {
      p->faulted_ = true;
    } catch (const sim::NetUnreachableError&) {
      p->faulted_ = true;
    } catch (const sim::MemoryFaultError&) {
      p->faulted_ = true;
    } catch (const sim::FiberKill&) {
      // This process's own node died.  Record the death without timed
      // operations (there is no CPU left to charge) and let the fiber end.
      kill_exit(*p);
      return;
    }
    exit_self();
  });
  p->fiber_->set_name(p->name_);
  by_fiber_[p->fiber_] = p;
  rec(oid).u = std::move(pp);
  ++live_processes_;
  m_.trace_instant("chrys", "create_process", oid);
  make_ready(*p);
  return oid;
}

Oid Kernel::process_of(sim::Fiber* f) const {
  auto it = by_fiber_.find(f);
  return it == by_fiber_.end() ? kNoObject : it->second->oid();
}

// --- Schedule exploration -----------------------------------------------------

void Kernel::set_schedule_exploration(std::uint64_t seed,
                                      std::uint32_t change_points,
                                      std::uint64_t horizon_steps) {
  explore_ = true;
  explore_rng_.reseed(seed);
  change_steps_.clear();
  change_cursor_ = 0;
  for (std::uint32_t i = 0; i < change_points; ++i)
    change_steps_.push_back(1 + explore_rng_.below(std::max<std::uint64_t>(
                                    horizon_steps, 1)));
  std::sort(change_steps_.begin(), change_steps_.end());
  // Processes created before exploration was enabled keep priority 0 (the
  // lowest); new processes draw on creation.
}

void Kernel::maybe_change_priority(Process& p) {
  ++dispatch_steps_;
  while (change_cursor_ < change_steps_.size() &&
         dispatch_steps_ >= change_steps_[change_cursor_]) {
    p.explore_prio_ = static_cast<std::uint32_t>(explore_rng_.next());
    ++change_cursor_;
  }
}

Oid Kernel::pick_waiter(DualQueueObj& q) {
  while (!q.waiters.empty()) {
    std::size_t best = 0;
    if (explore_) {
      for (std::size_t i = 1; i < q.waiters.size(); ++i) {
        // Live waiters only influence the pick; corpses are skipped below
        // either way.  Ties go to the oldest waiter, like FIFO.
        if (proc(q.waiters[i]).explore_prio_ >
            proc(q.waiters[best]).explore_prio_)
          best = i;
      }
    }
    const Oid w = q.waiters[best];
    q.waiters.erase(q.waiters.begin() +
                    static_cast<std::ptrdiff_t>(best));
    Process& p = proc(w);
    if (p.killed_ || p.state_ == Process::State::kExited) continue;
    // A handoff pick is a scheduling decision: it advances the PCT step
    // counter and can consume a priority-change point, like a dispatch.
    if (explore_) maybe_change_priority(p);
    return w;
  }
  return kNoObject;
}

std::vector<Kernel::BlockedInfo> Kernel::blocked_processes() const {
  std::vector<BlockedInfo> out;
  for (const auto& [oid, r] : objects_) {
    if (r.kind != ObjKind::kProcess) continue;
    const Process& p = *std::get<std::unique_ptr<Process>>(r.u);
    if (p.state() == Process::State::kBlocked)
      out.push_back(BlockedInfo{p.name(), oid, p.waiting_on()});
  }
  return out;
}

std::string Kernel::sched_snapshot() const {
  std::string out;
  for (std::size_t n = 0; n < sched_.size(); ++n) {
    const NodeSched& ns = sched_[n];
    if (ns.current == nullptr && ns.ready.empty()) continue;
    out += "node " + std::to_string(n) + ": current=";
    out += ns.current != nullptr ? ns.current->name() : std::string("-");
    for (const Process* p : ns.ready) out += " ready:" + p->name();
    out += '\n';
  }
  return out;
}

Process& Kernel::self() {
  sim::Fiber* f = sim::Fiber::current();
  auto it = by_fiber_.find(f);
  if (f == nullptr || it == by_fiber_.end())
    throw sim::SimError("self(): not called from a Chrysalis process");
  return *it->second;
}

bool Kernel::on_process() const {
  sim::Fiber* f = sim::Fiber::current();
  return f != nullptr && by_fiber_.count(f) > 0;
}

void Kernel::make_ready(Process& p) {
  if (p.killed_ || p.state_ == Process::State::kExited) return;
  if (p.state_ == Process::State::kRunning) {
    // The target is on its CPU, part-way through deciding to block (e.g.
    // inside the context-switch charge of block_self).  Flag the wakeup so
    // the block is cancelled instead of lost.
    p.wakeup_pending_ = true;
    return;
  }
  p.state_ = Process::State::kReady;
  NodeSched& ns = sched_[p.node_];
  if (ns.current == nullptr) {
    ns.current = &p;
    p.state_ = Process::State::kRunning;
    p.wakeup_pending_ = false;
    m_.wakeup(p.fiber_);
  } else {
    ns.ready.push_back(&p);
  }
}

void Kernel::dispatch_next(sim::NodeId node) {
  NodeSched& ns = sched_[node];
  if (ns.ready.empty()) {
    ns.current = nullptr;
    return;
  }
  std::size_t pick = 0;
  if (explore_) {
    // PCT dispatch: highest priority wins, ties to the oldest (FIFO).
    for (std::size_t i = 1; i < ns.ready.size(); ++i)
      if (ns.ready[i]->explore_prio_ > ns.ready[pick]->explore_prio_) pick = i;
  }
  ns.current = ns.ready[pick];
  ns.ready.erase(ns.ready.begin() + static_cast<std::ptrdiff_t>(pick));
  ns.current->state_ = Process::State::kRunning;
  ns.current->wakeup_pending_ = false;
  if (explore_) maybe_change_priority(*ns.current);
  m_.wakeup(ns.current->fiber_);
}

void Kernel::block_self() {
  Process& p = self();
  assert(sched_[p.node_].current == &p);
  ++p.wait_seq_;  // invalidates any timer armed for an earlier wait
  m_.charge(m_.config().proc_switch_ns);
  if (p.wakeup_pending_) {
    // A post raced with our decision to block: stay on the CPU.
    p.wakeup_pending_ = false;
    return;
  }
  p.state_ = Process::State::kBlocked;
  dispatch_next(p.node_);
  m_.park();
  // Resumed: make_ready set us Running and installed us as current.
}

void Kernel::exit_self() {
  Process& p = self();
  p.state_ = Process::State::kExited;
  by_fiber_.erase(p.fiber_);
  --live_processes_;
  // SARs return to the node at exit.
  sars_free_[p.node_] += p.sar_block_;
  p.sar_block_ = 0;
  // Reclaim subsidiary objects (ownership hierarchy).
  std::vector<Oid> kids = rec(p.oid()).children;
  for (Oid k : kids) delete_object(k);
  // System-owned objects this process created are now unreachable garbage:
  // nothing will ever reclaim them.  "Chrysalis tends to leak storage."
  for (auto& [oid, r] : objects_) {
    (void)oid;
    if (r.system_owned && r.creator == p.oid() &&
        r.kind == ObjKind::kMemoryObject) {
      leaked_bytes_ += std::get<MemObj>(r.u).size;
      r.creator = kNoObject;  // count once
    }
  }
  dispatch_next(p.node_);
  // Fall off: the fiber body returns and the fiber finishes.
}

void Kernel::kill_exit(Process& p) {
  if (p.state_ == Process::State::kExited) return;
  p.killed_ = true;
  p.faulted_ = true;
  p.state_ = Process::State::kExited;
  by_fiber_.erase(p.fiber_);
  --live_processes_;
  ++killed_processes_;
  sars_free_[p.node_] += p.sar_block_;
  p.sar_block_ = 0;
  // Pull the corpse out of the dead node's scheduler...
  NodeSched& ns = sched_[p.node_];
  if (ns.current == &p) ns.current = nullptr;
  std::erase(ns.ready, &p);
  // ...and out of whatever it was blocked on, so a later post is not
  // delivered to it.
  if (p.waiting_on_ != kNoObject) {
    auto it = objects_.find(p.waiting_on_);
    if (it != objects_.end()) {
      if (it->second.kind == ObjKind::kDualQueue) {
        auto& q = std::get<DualQueueObj>(it->second.u);
        std::erase(q.waiters, p.oid());
      } else if (it->second.kind == ObjKind::kEvent) {
        auto& e = std::get<EventObj>(it->second.u);
        if (e.owner == p.oid()) e.waiting = false;
      }
    }
    p.waiting_on_ = kNoObject;
  }
  // A datum handed to this process but never consumed goes back to its
  // queue: task descriptors and tokens must not die with a courier.
  if (p.dq_handoff_from_ != kNoObject) {
    const Oid src = p.dq_handoff_from_;
    p.dq_handoff_from_ = kNoObject;
    if (objects_.count(src) > 0 && rec(src).kind == ObjKind::kDualQueue)
      deliver_or_queue(src, p.wait_datum_);
  }
  // Unlike exit_self, nothing is reclaimed: the node crashed, so its
  // subsidiary objects linger until kernel teardown — faithful to a machine
  // where a dead node's memory objects were simply unreachable.
}

void Kernel::handle_node_death(sim::NodeId n) {
  for (auto& [oid, r] : objects_) {
    (void)oid;
    if (r.kind != ObjKind::kProcess) continue;
    Process& p = *std::get<std::unique_ptr<Process>>(r.u);
    if (p.node_ != n || p.state_ == Process::State::kExited) continue;
    p.killed_ = true;  // visible immediately: posts now skip this process
    // Processes whose fiber never started have no stack to unwind; the
    // machine drops them outright, so their exit bookkeeping happens here.
    // Started fibers unwind via FiberKill and reach kill_exit themselves.
    if (p.fiber_->state() == sim::Fiber::State::kRunnable) kill_exit(p);
  }
}

void Kernel::deliver_or_queue(Oid dq, std::uint32_t datum) {
  DualQueueObj& q = std::get<DualQueueObj>(rec(dq).u);
  if (const Oid woid = pick_waiter(q); woid != kNoObject) {
    Process& w = proc(woid);
    w.wait_datum_ = datum;
    w.waiting_on_ = kNoObject;
    w.dq_handoff_from_ = dq;
    m_.observe_post(sim::chan_of_oid(dq), sim::PostOutcome::kHandoff);
    make_ready(w);
    return;
  }
  // Head, not tail: the datum was logically already dequeued once.
  m_.observe_post(sim::chan_of_oid(dq), sim::PostOutcome::kQueued);
  q.data.push_front(datum);
}

void Kernel::yield() {
  Process& p = self();
  NodeSched& ns = sched_[p.node_];
  if (ns.ready.empty()) return;  // nothing else to run
  m_.charge(m_.config().proc_switch_ns);
  p.state_ = Process::State::kReady;
  ns.ready.push_back(&p);
  dispatch_next(p.node_);
  // Under schedule exploration the dispatcher picks by priority and may
  // re-pick the yielder itself (FIFO always picks the other process: the
  // yielder joined at the back).  Its wakeup was dropped — machine wakeups
  // on a still-running fiber are no-ops — so parking here would sleep
  // forever on a wakeup that already happened.  Found by sched_fuzz: the
  // first wedged seed parked Membership::start()'s creation loop this way
  // and stranded every process behind it.
  if (ns.current == &p) return;
  m_.park();
}

void Kernel::delay(sim::Time ns) {
  // A real delay releases the CPU unconditionally.  Charging the interval
  // instead when the ready queue happens to be empty looks equivalent but
  // is not: charges are non-preemptible, so a process that becomes ready
  // mid-delay (a server woken by an arriving request, a client woken by a
  // reply) would wait out the sleeper's whole charge.  Periodic sleepers —
  // heartbeat daemons, open-loop load generators — would make every node
  // look permanently busy.
  Process& p = self();
  const sim::Time wake_at = m_.now() + ns;
  p.state_ = Process::State::kBlocked;
  dispatch_next(p.node_);
  // Self-wakeup via a timer event; make_ready handles CPU availability.
  // Lifetime: look the process up by oid at fire time — it may have exited
  // (or died with its node) and been reclaimed while the timer was armed.
  const Oid poid = p.oid();
  m_.engine().post_at(wake_at, [this, poid] {
    auto it = objects_.find(poid);
    if (it == objects_.end()) return;
    Process& w = *std::get<std::unique_ptr<Process>>(it->second.u);
    if (w.killed_ || w.state_ != Process::State::kBlocked) return;
    // A delaying process waits on nothing; if it is blocked on an object,
    // this timer is stale (the process was woken by a kill/unwind path and
    // has moved on to a different wait).
    if (w.waiting_on_ != kNoObject) return;
    make_ready(w);
  });
  m_.park();
}

// --- Events ------------------------------------------------------------------------

Oid Kernel::make_event(Oid owner_process) {
  if (owner_process == kNoObject && on_process()) owner_process = self().oid();
  const Oid oid = new_object(ObjKind::kEvent, owner_process);
  EventObj e;
  e.owner = owner_process;
  rec(oid).u = e;
  charge_if_on_fiber(50 * sim::kMicrosecond);
  return oid;
}

void Kernel::event_post(Oid ev, std::uint32_t datum) {
  m_.trace_instant("chrys", "event_post", ev);
  charge_if_on_fiber(m_.config().event_post_ns);
  m_.observe_release(sim::chan_of_oid(ev));
  EventObj& e = std::get<EventObj>(rec(ev).u);
  if (e.waiting) {
    e.waiting = false;
    Process& owner = proc(e.owner);
    if (owner.killed_) {  // the waiter died with its node: drop
      m_.observe_post(sim::chan_of_oid(ev), sim::PostOutcome::kDroppedDead);
      return;
    }
    owner.wait_datum_ = datum;
    owner.waiting_on_ = kNoObject;
    m_.observe_post(sim::chan_of_oid(ev), sim::PostOutcome::kHandoff);
    make_ready(owner);
  } else {
    // A second post overwrites: binary semantics.  The overwritten datum —
    // and the wakeup it represented — is gone; moviola classifies a waiter
    // stuck on an event with overwrite history as a lost wakeup.
    m_.observe_post(sim::chan_of_oid(ev), e.pending
                                              ? sim::PostOutcome::kOverwrote
                                              : sim::PostOutcome::kQueued);
    e.pending = true;
    e.datum = datum;
  }
}

std::uint32_t Kernel::event_wait(Oid ev) {
  Process& p = self();
  sim::TraceSpan span(m_, "chrys", "event_wait", ev);
  m_.charge(m_.config().event_wait_ns);
  EventObj& e = std::get<EventObj>(rec(ev).u);
  if (e.owner != p.oid()) throw ThrowSignal{kThrowNotOwner, ev};
  if (e.pending) {
    e.pending = false;
    m_.observe_acquire(sim::chan_of_oid(ev));
    return e.datum;
  }
  e.waiting = true;
  p.waiting_on_ = ev;
  m_.observe_block(sim::chan_of_oid(ev), sim::WaitKind::kEvent);
  block_self();
  m_.observe_wake(sim::chan_of_oid(ev), sim::WakeReason::kServed);
  m_.observe_acquire(sim::chan_of_oid(ev));
  return p.wait_datum_;
}

bool Kernel::event_pending(Oid ev) const {
  return std::get<EventObj>(rec(ev).u).pending;
}

// --- Dual queues ---------------------------------------------------------------------

Oid Kernel::make_dual_queue(std::size_t capacity) {
  const Oid owner = on_process() ? self().oid() : kNoObject;
  const Oid oid = new_object(ObjKind::kDualQueue, owner);
  DualQueueObj q;
  q.capacity = capacity;
  rec(oid).u = std::move(q);
  charge_if_on_fiber(50 * sim::kMicrosecond);
  return oid;
}

void Kernel::dq_enqueue(Oid dq, std::uint32_t datum) {
  charge_if_on_fiber(m_.config().dq_enqueue_ns);
  dq_enqueue_uncharged(dq, datum);
}

void Kernel::dq_enqueue_uncharged(Oid dq, std::uint32_t datum) {
  m_.observe_release(sim::chan_of_oid(dq));
  DualQueueObj& q = std::get<DualQueueObj>(rec(dq).u);
  if (const Oid woid = pick_waiter(q); woid != kNoObject) {
    Process& w = proc(woid);
    w.wait_datum_ = datum;
    w.waiting_on_ = kNoObject;
    w.dq_handoff_from_ = dq;  // in flight until the dequeue call consumes it
    m_.observe_post(sim::chan_of_oid(dq), sim::PostOutcome::kHandoff);
    make_ready(w);
    return;
  }
  if (q.capacity != 0 && q.data.size() >= q.capacity)
    throw ThrowSignal{kThrowQueueFull, dq};
  m_.observe_post(sim::chan_of_oid(dq), sim::PostOutcome::kQueued);
  q.data.push_back(datum);
}

std::uint32_t Kernel::dq_dequeue(Oid dq) {
  Process& p = self();
  sim::TraceSpan span(m_, "chrys", "dq_wait", dq);
  m_.charge(m_.config().dq_dequeue_ns);
  DualQueueObj& q = std::get<DualQueueObj>(rec(dq).u);
  if (!q.data.empty()) {
    const std::uint32_t v = q.data.front();
    q.data.pop_front();
    m_.observe_acquire(sim::chan_of_oid(dq));
    return v;
  }
  q.waiters.push_back(p.oid());
  p.waiting_on_ = dq;
  m_.observe_block(sim::chan_of_oid(dq), sim::WaitKind::kDualQueue);
  block_self();
  m_.observe_wake(sim::chan_of_oid(dq), sim::WakeReason::kServed);
  p.dq_handoff_from_ = kNoObject;  // datum safely in our hands
  m_.observe_acquire(sim::chan_of_oid(dq));
  return p.wait_datum_;
}

bool Kernel::dq_dequeue_for(Oid dq, sim::Time timeout, std::uint32_t* out) {
  Process& p = self();
  sim::TraceSpan span(m_, "chrys", "dq_wait", dq);
  m_.charge(m_.config().dq_dequeue_ns);
  DualQueueObj& q = std::get<DualQueueObj>(rec(dq).u);
  if (!q.data.empty()) {
    *out = q.data.front();
    q.data.pop_front();
    m_.observe_acquire(sim::chan_of_oid(dq));
    return true;
  }
  q.waiters.push_back(p.oid());
  p.waiting_on_ = dq;
  p.timed_out_ = false;
  // block_self() bumps wait_seq_ exactly once; a timer for THIS wait must
  // match that value, so a stale timer firing during some later wait on the
  // same queue cannot cancel it.
  const std::uint64_t seq = p.wait_seq_ + 1;
  const Oid poid = p.oid();
  m_.engine().post_at(m_.now() + timeout, [this, poid, dq, seq] {
    auto it = objects_.find(poid);
    if (it == objects_.end()) return;
    Process& w = *std::get<std::unique_ptr<Process>>(it->second.u);
    if (w.killed_ || w.state_ != Process::State::kBlocked ||
        w.waiting_on_ != dq || w.wait_seq_ != seq)
      return;  // already served, or a different wait: stale timer
    auto qit = objects_.find(dq);
    if (qit != objects_.end()) {
      auto& qq = std::get<DualQueueObj>(qit->second.u);
      std::erase(qq.waiters, poid);
    }
    w.timed_out_ = true;
    w.waiting_on_ = kNoObject;
    make_ready(w);
  });
  m_.observe_block(sim::chan_of_oid(dq), sim::WaitKind::kDualQueue);
  block_self();
  m_.observe_wake(sim::chan_of_oid(dq), p.timed_out_ ? sim::WakeReason::kTimeout
                                                     : sim::WakeReason::kServed);
  if (p.timed_out_) return false;
  p.dq_handoff_from_ = kNoObject;  // datum safely in our hands
  m_.observe_acquire(sim::chan_of_oid(dq));
  *out = p.wait_datum_;
  return true;
}

bool Kernel::dq_try_dequeue(Oid dq, std::uint32_t* out) {
  charge_if_on_fiber(m_.config().dq_dequeue_ns);
  return dq_try_dequeue_uncharged(dq, out);
}

bool Kernel::dq_try_dequeue_uncharged(Oid dq, std::uint32_t* out) {
  DualQueueObj& q = std::get<DualQueueObj>(rec(dq).u);
  if (q.data.empty()) return false;
  *out = q.data.front();
  q.data.pop_front();
  m_.observe_acquire(sim::chan_of_oid(dq));
  return true;
}

std::size_t Kernel::dq_depth(Oid dq) const {
  return std::get<DualQueueObj>(rec(dq).u).data.size();
}

// --- Catch / throw ------------------------------------------------------------------

int Kernel::catch_block(const std::function<void()>& body,
                        std::uint32_t* datum_out) {
  charge_if_on_fiber(m_.config().catch_enter_ns);
  int code = kThrowNone;
  try {
    body();
  } catch (const ThrowSignal& t) {
    code = t.code;
    if (datum_out) *datum_out = t.datum;
  }
  charge_if_on_fiber(m_.config().catch_leave_ns);
  return code;
}

void Kernel::throw_err(int code, std::uint32_t datum) {
  throw ThrowSignal{code, datum};
}

}  // namespace bfly::chrys
