// Ant Farm — a lightweight process programming environment (Scott & Jones,
// BPR 21; Section 3.2 of the paper).
//
// Parallel graph algorithms "often call for one process per node of the
// graph"; none of the earlier Butterfly environments supported very large
// numbers of lightweight *blockable* threads.  Ant Farm encapsulates the
// microcoded communication primitives of Chrysalis with a Lynx-like
// coroutine scheduler: invocation of a blocking operation by a lightweight
// thread causes an implicit context switch to another runnable thread in
// the same Chrysalis process; when no thread is runnable, the scheduler
// blocks the whole process on a Chrysalis event.  Combined with a global
// heap and facilities for starting remote coroutines, threads communicate
// without regard to location.
//
// A Colony runs one runtime process per participating node; each runtime
// multiplexes any number of threads.  Threads address each other by
// ThreadId and exchange 64-bit datums through per-thread inboxes (larger
// payloads travel through the global heap).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chrysalis/kernel.hpp"

namespace bfly::antfarm {

using ThreadId = std::uint64_t;

class Colony {
 public:
  /// Create the runtime processes on nodes [0, nodes_used) of the machine
  /// (0 = all).  Must be called from a Chrysalis process.
  Colony(chrys::Kernel& k, std::uint32_t nodes_used = 0);
  ~Colony();

  Colony(const Colony&) = delete;
  Colony& operator=(const Colony&) = delete;

  std::uint32_t nodes_used() const { return nodes_; }

  /// Start a thread on `node` (remote coroutine start).  Callable from the
  /// creator process or from any Ant Farm thread.
  ThreadId start(sim::NodeId node, std::function<void()> fn);

  /// The identity of the calling thread.
  ThreadId self();
  /// Node a thread lives on.
  static sim::NodeId node_of(ThreadId t) {
    return static_cast<sim::NodeId>(t >> 32);
  }

  /// Send a 64-bit datum to a thread's inbox, wherever it lives.
  void send(ThreadId to, std::uint64_t datum);
  /// Block the calling thread until a datum arrives (implicit context
  /// switch to another runnable thread meanwhile).
  std::uint64_t receive();
  /// Non-blocking probe.
  bool try_receive(std::uint64_t* out);
  /// Voluntarily switch to another runnable thread on this node.
  void yield();

  /// Global heap: allocate shared memory scattered round-robin over the
  /// colony's nodes (threads pass PhysAddrs through messages).
  sim::PhysAddr galloc(std::size_t bytes);

  /// From the creator process: wait until every thread has finished, then
  /// shut the runtimes down.
  void join();

  std::uint64_t threads_started() const { return threads_started_; }
  std::uint64_t messages() const { return messages_; }

 private:
  struct Thread {
    ThreadId id = 0;
    sim::Fiber* fiber = nullptr;
    std::function<void()> fn;
    std::deque<std::uint64_t> inbox;
    bool blocked_on_receive = false;
    bool finished = false;
  };
  struct Runtime {
    sim::NodeId node = 0;
    chrys::Oid proc = chrys::kNoObject;
    chrys::Oid wake_event = chrys::kNoObject;  // owned by the runtime proc
    chrys::Oid control_dq = chrys::kNoObject;  // cross-node commands
    sim::Fiber* sched_fiber = nullptr;
    std::deque<Thread*> runnable;
    std::vector<std::unique_ptr<Thread>> threads;
    std::uint32_t next_local = 0;
    bool stop = false;
    bool waiting = false;  // scheduler is blocked on wake_event
  };
  // Cross-node command: start a thread or deliver a datum.
  struct Command {
    enum Kind { kStart, kSend, kStop } kind = kSend;
    ThreadId target = 0;
    std::uint64_t datum = 0;
    std::function<void()> fn;  // kStart
  };

  void scheduler_loop(Runtime& rt);
  void dispatch(Runtime& rt, Thread* t);
  void thread_trampoline(Runtime& rt, Thread* t);
  /// Switch from a running thread back to its runtime's scheduler.
  void back_to_scheduler(Runtime& rt);
  void make_runnable(Runtime& rt, Thread* t);
  void deliver_local(Runtime& rt, Thread* t, std::uint64_t datum);
  void post_command(Runtime& rt, Command cmd);
  Runtime& runtime_of_current();
  Thread* current_thread();

  chrys::Kernel& k_;
  sim::Machine& m_;
  std::uint32_t nodes_ = 0;
  std::vector<std::unique_ptr<Runtime>> runtimes_;
  std::unordered_map<sim::Fiber*, std::pair<Runtime*, Thread*>> by_fiber_;
  std::deque<Command> commands_;      // host-side bodies for control dqs
  std::vector<std::uint32_t> command_free_;
  std::uint64_t live_threads_ = 0;    // colony-wide
  std::uint64_t threads_started_ = 0;
  std::uint64_t messages_ = 0;
  std::uint32_t heap_cursor_ = 0;
  chrys::Oid done_dq_ = chrys::kNoObject;
};

}  // namespace bfly::antfarm
