#include "antfarm/antfarm.hpp"

#include <cassert>

namespace bfly::antfarm {

namespace {
constexpr sim::Time kLocalSendCost = 15 * sim::kMicrosecond;
constexpr sim::Time kReceiveCost = 10 * sim::kMicrosecond;
constexpr sim::Time kStartCost = 60 * sim::kMicrosecond;
}  // namespace

Colony::Colony(chrys::Kernel& k, std::uint32_t nodes_used)
    : k_(k), m_(k.machine()) {
  nodes_ = nodes_used == 0 ? m_.nodes() : std::min(nodes_used, m_.nodes());
  done_dq_ = k_.make_dual_queue();
  runtimes_.reserve(nodes_);
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    auto rt = std::make_unique<Runtime>();
    rt->node = n;
    rt->control_dq = k_.make_dual_queue();
    runtimes_.push_back(std::move(rt));
  }
  for (std::uint32_t n = 0; n < nodes_; ++n) {
    Runtime* rt = runtimes_[n].get();
    rt->proc = k_.create_process(
        n,
        [this, rt] {
          rt->wake_event = k_.make_event();
          rt->sched_fiber = sim::Fiber::current();
          scheduler_loop(*rt);
          k_.dq_enqueue(done_dq_, rt->node);
        },
        "antfarm-rt" + std::to_string(n));
  }
}

Colony::~Colony() = default;

// --- Scheduler ---------------------------------------------------------------

void Colony::scheduler_loop(Runtime& rt) {
  while (true) {
    // Drain cross-node commands first.
    std::uint32_t cid = 0;
    while (k_.dq_try_dequeue(rt.control_dq, &cid)) {
      Command cmd = std::move(commands_[cid]);
      command_free_.push_back(cid);
      switch (cmd.kind) {
        case Command::kStart: {
          auto t = std::make_unique<Thread>();
          t->id = cmd.target;
          t->fn = std::move(cmd.fn);
          Thread* tp = t.get();
          rt.threads.push_back(std::move(t));
          make_runnable(rt, tp);
          break;
        }
        case Command::kSend: {
          const auto local =
              static_cast<std::uint32_t>(cmd.target & 0xffffffffu);
          deliver_local(rt, rt.threads[local].get(), cmd.datum);
          break;
        }
        case Command::kStop:
          rt.stop = true;
          break;
      }
    }
    if (!rt.runnable.empty()) {
      Thread* t = rt.runnable.front();
      rt.runnable.pop_front();
      dispatch(rt, t);
      continue;
    }
    if (rt.stop) break;
    // Nothing runnable: block the whole process on a Chrysalis event.
    rt.waiting = true;
    (void)k_.event_wait(rt.wake_event);
    rt.waiting = false;
  }
}

void Colony::dispatch(Runtime& rt, Thread* t) {
  m_.charge(m_.config().thread_switch_ns);
  if (t->fiber == nullptr) {
    // First dispatch: create the coroutine.
    t->fiber = m_.spawn_parked(rt.node, [this, &rt, t] {
      thread_trampoline(rt, t);
    });
    by_fiber_[t->fiber] = {&rt, t};
  }
  m_.wakeup(t->fiber);
  m_.park();
  if (t->finished) {
    by_fiber_.erase(t->fiber);
    --live_threads_;
  }
}

void Colony::thread_trampoline(Runtime& rt, Thread* t) {
  t->fn();
  t->finished = true;
  m_.wakeup(rt.sched_fiber);
  // Fall off: the fiber finishes and the machine reaps it.
}

void Colony::back_to_scheduler(Runtime& rt) {
  m_.wakeup(rt.sched_fiber);
  m_.park();
}

void Colony::make_runnable(Runtime& rt, Thread* t) {
  rt.runnable.push_back(t);
}

void Colony::deliver_local(Runtime& rt, Thread* t, std::uint64_t datum) {
  t->inbox.push_back(datum);
  if (t->blocked_on_receive) {
    t->blocked_on_receive = false;
    make_runnable(rt, t);
  }
}

void Colony::post_command(Runtime& rt, Command cmd) {
  std::uint32_t cid;
  if (!command_free_.empty()) {
    cid = command_free_.back();
    command_free_.pop_back();
    commands_[cid] = std::move(cmd);
  } else {
    commands_.push_back(std::move(cmd));
    cid = static_cast<std::uint32_t>(commands_.size() - 1);
  }
  k_.dq_enqueue(rt.control_dq, cid);
  // Ring the doorbell unconditionally: posting to a non-waiting scheduler
  // just leaves the event pending (checking `waiting` first would race and
  // lose the wakeup).
  if (rt.wake_event != chrys::kNoObject)
    k_.event_post(rt.wake_event, 0);
}

Colony::Runtime& Colony::runtime_of_current() {
  auto it = by_fiber_.find(sim::Fiber::current());
  if (it == by_fiber_.end())
    throw sim::SimError("not called from an Ant Farm thread");
  return *it->second.first;
}

Colony::Thread* Colony::current_thread() {
  auto it = by_fiber_.find(sim::Fiber::current());
  return it == by_fiber_.end() ? nullptr : it->second.second;
}

// --- Public API -----------------------------------------------------------------

ThreadId Colony::start(sim::NodeId node, std::function<void()> fn) {
  if (node >= nodes_) throw sim::SimError("start: node outside colony");
  Runtime& rt = *runtimes_[node];
  const ThreadId id =
      (static_cast<ThreadId>(node) << 32) | rt.next_local++;
  ++live_threads_;
  ++threads_started_;
  m_.charge(kStartCost);
  Thread* cur = current_thread();
  if (cur != nullptr && node_of(cur->id) == node) {
    // Local start: no kernel traffic needed.
    auto t = std::make_unique<Thread>();
    t->id = id;
    t->fn = std::move(fn);
    Thread* tp = t.get();
    rt.threads.push_back(std::move(t));
    make_runnable(rt, tp);
  } else {
    Command cmd;
    cmd.kind = Command::kStart;
    cmd.target = id;
    cmd.fn = std::move(fn);
    post_command(rt, std::move(cmd));
  }
  return id;
}

ThreadId Colony::self() {
  Thread* t = current_thread();
  if (t == nullptr) throw sim::SimError("self: not an Ant Farm thread");
  return t->id;
}

void Colony::send(ThreadId to, std::uint64_t datum) {
  ++messages_;
  const sim::NodeId node = node_of(to);
  Runtime& target = *runtimes_[node];
  Thread* cur = current_thread();
  if (cur != nullptr && node_of(cur->id) == node) {
    m_.charge(kLocalSendCost);
    deliver_local(target, target.threads[to & 0xffffffffu].get(), datum);
  } else {
    Command cmd;
    cmd.kind = Command::kSend;
    cmd.target = to;
    cmd.datum = datum;
    post_command(target, std::move(cmd));
  }
}

std::uint64_t Colony::receive() {
  Thread* t = current_thread();
  if (t == nullptr) throw sim::SimError("receive: not an Ant Farm thread");
  m_.charge(kReceiveCost);
  if (t->inbox.empty()) {
    t->blocked_on_receive = true;
    back_to_scheduler(*runtimes_[node_of(t->id)]);
  }
  assert(!t->inbox.empty());
  const std::uint64_t v = t->inbox.front();
  t->inbox.pop_front();
  return v;
}

bool Colony::try_receive(std::uint64_t* out) {
  Thread* t = current_thread();
  if (t == nullptr) throw sim::SimError("try_receive: not an Ant Farm thread");
  m_.charge(kReceiveCost);
  if (t->inbox.empty()) return false;
  *out = t->inbox.front();
  t->inbox.pop_front();
  return true;
}

void Colony::yield() {
  Thread* t = current_thread();
  if (t == nullptr) throw sim::SimError("yield: not an Ant Farm thread");
  Runtime& rt = *runtimes_[node_of(t->id)];
  make_runnable(rt, t);
  back_to_scheduler(rt);
}

sim::PhysAddr Colony::galloc(std::size_t bytes) {
  const sim::NodeId node = heap_cursor_++ % nodes_;
  m_.charge(50 * sim::kMicrosecond);
  return m_.alloc(node, bytes);
}

void Colony::join() {
  // Poll until every thread has finished and no command is in flight, then
  // stop the runtimes.
  while (live_threads_ > 0) k_.delay(sim::kMillisecond);
  for (auto& rt : runtimes_) {
    Command cmd;
    cmd.kind = Command::kStop;
    post_command(*rt, std::move(cmd));
  }
  for (std::uint32_t i = 0; i < nodes_; ++i) (void)k_.dq_dequeue(done_dq_);
}

}  // namespace bfly::antfarm
