#include "crowd/crowd.hpp"

#include <string>

namespace bfly::crowd {

namespace {

struct Ctx {
  chrys::Kernel& k;
  std::uint32_t n;
  std::function<void(std::uint32_t)> fn;
  CrowdOptions opt;
  chrys::Oid done_dq;
};

void start_worker(Ctx& ctx, std::uint32_t w);

void worker_body(Ctx& ctx, std::uint32_t w) {
  // Create the subtree first, so creation proceeds in parallel...
  for (std::uint32_t c = ctx.opt.fanout * w + 1;
       c <= ctx.opt.fanout * w + ctx.opt.fanout && c < ctx.n; ++c)
    start_worker(ctx, c);
  // ...then do this worker's own share.
  ctx.fn(w);
  ctx.k.dq_enqueue(ctx.done_dq, w);
}

void start_worker(Ctx& ctx, std::uint32_t w) {
  const sim::NodeId node =
      (ctx.opt.base_node + w) % ctx.k.machine().nodes();
  ctx.k.create_process(node, [&ctx, w] { worker_body(ctx, w); },
                       "crowd-" + std::to_string(w));
}

}  // namespace

sim::Time spread(chrys::Kernel& k, std::uint32_t n,
                 std::function<void(std::uint32_t)> fn, CrowdOptions opt) {
  if (n == 0) return 0;
  const sim::Time t0 = k.now();
  Ctx ctx{k, n, std::move(fn), opt, k.make_dual_queue()};
  start_worker(ctx, 0);
  for (std::uint32_t i = 0; i < n; ++i) (void)k.dq_dequeue(ctx.done_dq);
  k.delete_object(ctx.done_dq);
  return k.now() - t0;
}

sim::Time spread_serial(chrys::Kernel& k, std::uint32_t n,
                        std::function<void(std::uint32_t)> fn,
                        CrowdOptions opt) {
  if (n == 0) return 0;
  const sim::Time t0 = k.now();
  const chrys::Oid done = k.make_dual_queue();
  for (std::uint32_t w = 0; w < n; ++w) {
    const sim::NodeId node = (opt.base_node + w) % k.machine().nodes();
    k.create_process(
        node,
        [&fn, &k, done, w] {
          fn(w);
          k.dq_enqueue(done, w);
        },
        "serial-" + std::to_string(w));
  }
  for (std::uint32_t i = 0; i < n; ++i) (void)k.dq_dequeue(done);
  k.delete_object(done);
  return k.now() - t0;
}

}  // namespace bfly::crowd
