// Crowd Control — coordinating processes in parallel (LeBlanc & Jain,
// ICPP'87; Section 3.3 of the paper).
//
// "The Crowd Control package can be used to parallelize almost any function
// whose serial component is due to contention for read-only data" — its
// canonical use at Rochester was parallelizing process creation, where a
// single creator is otherwise a linear bottleneck.  Workers form a k-ary
// tree: each worker creates its children before doing its own work, so the
// local portion of creation proceeds in parallel.  The paper's Amdahl
// lesson survives intact: "serial access to system resources (such as
// process templates in Chrysalis) ultimately limits our ability to exploit
// large-scale parallelism during process creation" — our Chrysalis models
// that serialized template section, so the speedup ceiling is observable.
#pragma once

#include <cstdint>
#include <functional>

#include "chrysalis/kernel.hpp"

namespace bfly::crowd {

struct CrowdOptions {
  std::uint32_t fanout = 2;       ///< tree arity
  sim::NodeId base_node = 0;      ///< worker w runs on (base + w) mod nodes
};

/// Run `fn(worker_index)` on `n` worker processes spread over the machine,
/// created through a fan-out tree.  Blocks the calling process until every
/// worker has finished.  Returns the elapsed simulated time.
sim::Time spread(chrys::Kernel& k, std::uint32_t n,
                 std::function<void(std::uint32_t)> fn,
                 CrowdOptions opt = {});

/// The baseline Crowd Control replaces: the caller creates all `n` workers
/// itself, serially.  Same completion semantics; returns elapsed time.
sim::Time spread_serial(chrys::Kernel& k, std::uint32_t n,
                        std::function<void(std::uint32_t)> fn,
                        CrowdOptions opt = {});

}  // namespace bfly::crowd
