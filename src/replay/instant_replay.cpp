#include "replay/instant_replay.hpp"

#include <cassert>

namespace bfly::replay {

namespace {
// Retry interval while spinning for a version (replay) or for readers to
// drain (record-mode writers).
constexpr sim::Time kSpin = 20 * sim::kMicrosecond;
}  // namespace

Monitor::Monitor(chrys::Kernel& k, std::uint32_t actors)
    : k_(k), m_(k.machine()) {
  record_.per_actor.resize(actors);
  cursor_.assign(actors, 0);
}

std::uint32_t Monitor::register_object(sim::NodeId home, std::string name) {
  ObjState o;
  o.lock = m_.alloc(home, 4);
  o.version = m_.alloc(home, 4);
  o.active_readers = m_.alloc(home, 4);
  o.version_readers = m_.alloc(home, 4);
  o.name = std::move(name);
  m_.poke<std::uint32_t>(o.lock, 0);
  m_.poke<std::uint32_t>(o.version, 0);
  m_.poke<std::uint32_t>(o.active_readers, 0);
  m_.poke<std::uint32_t>(o.version_readers, 0);
  m_.label_memory(o.lock, 4, "IR." + o.name + ".lock");
  m_.label_memory(o.version, 4, "IR." + o.name + ".version");
  m_.label_memory(o.active_readers, 4, "IR." + o.name + ".active_readers");
  m_.label_memory(o.version_readers, 4, "IR." + o.name + ".version_readers");
  obj_.push_back(o);
  record_.object_names.push_back(obj_.back().name);
  return static_cast<std::uint32_t>(obj_.size() - 1);
}

void Monitor::lock_obj(const ObjState& o) {
  while (m_.test_and_set(o.lock) != 0) {
    ++monitor_refs_;
    m_.charge(kSpin);
  }
  ++monitor_refs_;
}

void Monitor::unlock_obj(const ObjState& o) {
  m_.write<std::uint32_t>(o.lock, 0);
  ++monitor_refs_;
}

AccessEntry Monitor::next_entry(std::uint32_t actor, std::uint32_t obj,
                                bool is_write) {
  auto& cur = cursor_[actor];
  const auto& script = script_.per_actor[actor];
  if (cur >= script.size())
    throw chrys::ThrowSignal{chrys::kThrowReplayDiverged, actor};
  const AccessEntry e = script[cur++];
  if (e.object != obj || e.is_write != is_write)
    throw chrys::ThrowSignal{chrys::kThrowReplayDiverged, actor};
  return e;
}

void Monitor::begin_read(std::uint32_t actor, std::uint32_t obj) {
  if (mode_ == Mode::kOff) return;
  const ObjState& o = obj_[obj];
  if (mode_ == Mode::kRecord) {
    lock_obj(o);
    const std::uint32_t v = m_.read<std::uint32_t>(o.version);
    (void)m_.fetch_add_u32(o.active_readers, 1);
    (void)m_.fetch_add_u32(o.version_readers, 1);
    monitor_refs_ += 3;
    unlock_obj(o);
    record_.per_actor[actor].push_back(
        AccessEntry{obj, v, 0, false, m_.now()});
    return;
  }
  // Replay: wait for the logged version.
  const AccessEntry e = next_entry(actor, obj, /*is_write=*/false);
  while (true) {
    lock_obj(o);
    const std::uint32_t v = m_.read<std::uint32_t>(o.version);
    ++monitor_refs_;
    if (v == e.version) {
      (void)m_.fetch_add_u32(o.active_readers, 1);
      (void)m_.fetch_add_u32(o.version_readers, 1);
      monitor_refs_ += 2;
      unlock_obj(o);
      return;
    }
    unlock_obj(o);
    m_.charge(kSpin);
  }
}

void Monitor::end_read(std::uint32_t actor, std::uint32_t obj) {
  (void)actor;
  if (mode_ == Mode::kOff) return;
  const ObjState& o = obj_[obj];
  (void)m_.fetch_add_u32(o.active_readers, 0xffffffffu);
  ++monitor_refs_;
}

void Monitor::begin_write(std::uint32_t actor, std::uint32_t obj) {
  if (mode_ == Mode::kOff) return;
  const ObjState& o = obj_[obj];
  if (mode_ == Mode::kRecord) {
    while (true) {
      lock_obj(o);
      const std::uint32_t active = m_.read<std::uint32_t>(o.active_readers);
      ++monitor_refs_;
      if (active == 0) break;  // hold the lock through the write section
      unlock_obj(o);
      m_.charge(kSpin);
    }
    const std::uint32_t v = m_.read<std::uint32_t>(o.version);
    const std::uint32_t r = m_.read<std::uint32_t>(o.version_readers);
    monitor_refs_ += 2;
    record_.per_actor[actor].push_back(AccessEntry{obj, v, r, true, m_.now()});
    return;
  }
  // Replay: wait until the logged version is current, the logged readers
  // have all come and gone, and nobody is mid-read.
  const AccessEntry e = next_entry(actor, obj, /*is_write=*/true);
  while (true) {
    lock_obj(o);
    const std::uint32_t v = m_.read<std::uint32_t>(o.version);
    const std::uint32_t r = m_.read<std::uint32_t>(o.version_readers);
    const std::uint32_t active = m_.read<std::uint32_t>(o.active_readers);
    monitor_refs_ += 3;
    if (v == e.version && r >= e.readers && active == 0) return;  // lock held
    unlock_obj(o);
    m_.charge(kSpin);
  }
}

void Monitor::end_write(std::uint32_t actor, std::uint32_t obj) {
  (void)actor;
  if (mode_ == Mode::kOff) return;
  const ObjState& o = obj_[obj];
  (void)m_.fetch_add_u32(o.version, 1);
  m_.write<std::uint32_t>(o.version_readers, 0);
  monitor_refs_ += 2;
  unlock_obj(o);
}

Log Monitor::take_log() {
  Log out = std::move(record_);
  record_ = Log{};
  record_.per_actor.resize(out.per_actor.size());
  record_.object_names = out.object_names;
  return out;
}

void Monitor::load_log(Log log) {
  script_ = std::move(log);
  cursor_.assign(script_.per_actor.size(), 0);
}

}  // namespace bfly::replay
