// Instant Replay — reproducible execution of parallel programs (LeBlanc &
// Mellor-Crummey, IEEE ToC 1987; Section 3.3 of the paper).
//
// Cyclic debugging of nondeterministic programs is impractical, and saving
// full message logs "would quickly fill all memory".  Instant Replay
// instead saves only the *relative order* of significant events — the
// version numbers of accesses to shared objects — and later forces the
// same relative order while re-running the program.  The content of the
// communication is never saved: the re-execution regenerates it.  The
// approach assumes a communication model based on shared objects, "which
// are used to implement both shared memory and message passing", so it
// covers every Rochester package.  No central bottleneck, no synchronized
// clocks.
//
// Protocol (concurrent-read exclusive-write):
//   * every shared object carries a version number and reader counts in
//     its home node's memory;
//   * record: a reader logs the version it saw; a writer logs the version
//     it replaced and how many readers that version had;
//   * replay: a reader spins until the object reaches its logged version;
//     a writer spins until the version matches, the logged number of
//     readers have come and gone, and no reader is active.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chrysalis/kernel.hpp"

namespace bfly::replay {

enum class Mode { kOff, kRecord, kReplay };

struct AccessEntry {
  std::uint32_t object = 0;
  std::uint32_t version = 0;  ///< version observed
  std::uint32_t readers = 0;  ///< writes: readers of the replaced version
  bool is_write = false;
  sim::Time at = 0;           ///< record-time timestamp (display only)
};

/// Per-actor access logs.  This is the entire state Instant Replay saves —
/// note there is no message *content* anywhere in it.
struct Log {
  std::vector<std::vector<AccessEntry>> per_actor;
  std::vector<std::string> object_names;

  std::size_t total_entries() const {
    std::size_t n = 0;
    for (const auto& v : per_actor) n += v.size();
    return n;
  }
};

class Monitor {
 public:
  /// `actors` is the number of logical processes being monitored.
  Monitor(chrys::Kernel& k, std::uint32_t actors);

  void set_mode(Mode m) { mode_ = m; }
  Mode mode() const { return mode_; }

  /// Register a shared object whose accesses are monitored; its version
  /// cells live on `home`.
  std::uint32_t register_object(sim::NodeId home, std::string name);
  std::uint32_t objects() const {
    return static_cast<std::uint32_t>(obj_.size());
  }

  // --- CREW access protocol (bracket every access section) ----------------
  void begin_read(std::uint32_t actor, std::uint32_t obj);
  void end_read(std::uint32_t actor, std::uint32_t obj);
  void begin_write(std::uint32_t actor, std::uint32_t obj);
  void end_write(std::uint32_t actor, std::uint32_t obj);

  /// Harvest the recorded log (typically after a record-mode run).
  Log take_log();
  /// Install a log to drive a replay-mode run.
  void load_log(Log log);
  /// Drop everything recorded so far (a checkpoint barrier: a restarted run
  /// resumes from the checkpoint, so history before it can never be
  /// replayed and need not be kept — the log stays bounded).
  void truncate_log() {
    for (auto& v : record_.per_actor) v.clear();
  }

  /// Number of monitoring memory references issued (to quantify the
  /// "within a few percent" overhead claim).
  std::uint64_t monitor_refs() const { return monitor_refs_; }

 private:
  struct ObjState {
    // Simulated cells on the object's home node.
    sim::PhysAddr lock;            // spin lock word
    sim::PhysAddr version;         // current version
    sim::PhysAddr active_readers;  // readers inside a section now
    sim::PhysAddr version_readers; // readers that saw the current version
    std::string name;
  };

  void lock_obj(const ObjState& o);
  void unlock_obj(const ObjState& o);
  AccessEntry next_entry(std::uint32_t actor, std::uint32_t obj,
                         bool is_write);

  chrys::Kernel& k_;
  sim::Machine& m_;
  Mode mode_ = Mode::kOff;
  std::vector<ObjState> obj_;
  Log record_;                      // being recorded
  Log script_;                      // driving a replay
  std::vector<std::size_t> cursor_; // per-actor position in script_
  std::uint64_t monitor_refs_ = 0;
};

}  // namespace bfly::replay
