// Moviola — the graphical execution browser of the Rochester debugging
// toolkit (Fowler, LeBlanc & Mellor-Crummey 1988; Section 3.3).
//
// Moviola "makes it possible to examine the partial order of events in a
// parallel program at arbitrary levels of detail"; it "has been used to
// discover performance bottlenecks and message-ordering bugs, and to derive
// analytical predictions of running times".  Figure 6 of the paper is a
// Moviola view of deadlock in an odd-even merge sort.
//
// This library builds the event partial order from an Instant Replay log:
// per-actor program-order chains plus the version dependences between
// accesses to shared objects (write creating version v happens-before every
// read of v; reads of v happen-before the write replacing v).  It exports
// Graphviz DOT for display, computes the critical path, and renders a
// deadlock report from a Chrysalis kernel snapshot (the Figure 6 view).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chrysalis/kernel.hpp"
#include "replay/instant_replay.hpp"

namespace bfly::replay {

class Moviola {
 public:
  struct Event {
    std::uint32_t actor;
    std::uint32_t seq;     ///< position in the actor's timeline
    AccessEntry entry;
  };
  struct Edge {
    std::uint32_t from;  ///< event index
    std::uint32_t to;
  };

  explicit Moviola(const Log& log);

  const std::vector<Event>& events() const { return events_; }
  /// Program-order plus cross-actor dependence edges.
  const std::vector<Edge>& edges() const { return edges_; }
  std::size_t cross_actor_edges() const { return cross_edges_; }

  /// Longest dependence chain, in events — the abstract critical path.
  std::uint32_t critical_path() const;

  /// Events per actor (load-balance view).
  std::vector<std::uint32_t> events_per_actor() const;

  /// The serialization bottleneck: the shared object whose version chain
  /// is longest ("used to discover performance bottlenecks").
  struct Bottleneck {
    std::uint32_t object = 0;
    std::uint32_t chain = 0;   ///< events serialized through it
    std::string name;
  };
  Bottleneck bottleneck() const;

  /// Graphviz rendering of the partial order (one horizontal rank per
  /// actor, dashed cross-actor dependences).
  std::string to_dot() const;

  /// The Figure 6 view: which processes are blocked, on what, and whether
  /// the machine as a whole has deadlocked.
  static std::string deadlock_report(chrys::Kernel& k, sim::Machine& m);

 private:
  const Log& log_;
  std::vector<Event> events_;
  std::vector<Edge> edges_;
  std::size_t cross_edges_ = 0;
};

}  // namespace bfly::replay
