#include "replay/moviola.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace bfly::replay {

Moviola::Moviola(const Log& log) : log_(log) {
  // Flatten events, keeping (object, version) indices for dependences.
  // writer_of[obj][v]  = event that created version v (wrote over v-1)
  // readers_of[obj][v] = events that read version v
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> writer_of;
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::uint32_t>>
      readers_of;

  for (std::uint32_t a = 0; a < log.per_actor.size(); ++a) {
    for (std::uint32_t s = 0; s < log.per_actor[a].size(); ++s) {
      const auto idx = static_cast<std::uint32_t>(events_.size());
      events_.push_back(Event{a, s, log.per_actor[a][s]});
      if (s > 0) edges_.push_back(Edge{idx - 1, idx});  // program order
      const AccessEntry& e = log.per_actor[a][s];
      if (e.is_write) {
        // This write observed `e.version` and created `e.version + 1`.
        writer_of[{e.object, e.version + 1}] = idx;
      } else {
        readers_of[{e.object, e.version}].push_back(idx);
      }
    }
  }
  // Cross edges: creator(v) -> readers(v); readers(v) -> replacer(v).
  for (const auto& [key, readers] : readers_of) {
    auto w = writer_of.find(key);
    for (std::uint32_t r : readers) {
      if (w != writer_of.end()) {
        edges_.push_back(Edge{w->second, r});
        ++cross_edges_;
      }
      auto next_w = writer_of.find({key.first, key.second + 1});
      // The write replacing version v observed v: it must follow readers
      // of v.  Find it via the writer that observed key.second.
      if (next_w != writer_of.end()) {
        edges_.push_back(Edge{r, next_w->second});
        ++cross_edges_;
      }
    }
  }
  // Write-write chains (when a version had no readers).
  for (const auto& [key, w] : writer_of) {
    auto next_w = writer_of.find({key.first, key.second + 1});
    if (next_w != writer_of.end()) {
      edges_.push_back(Edge{w, next_w->second});
      ++cross_edges_;
    }
  }
}

std::uint32_t Moviola::critical_path() const {
  if (events_.empty()) return 0;
  // Longest path in the DAG: process in topological order (events were
  // appended in a valid order per actor; use relaxation over edges until
  // fixpoint — the graph is small and acyclic).
  std::vector<std::uint32_t> depth(events_.size(), 1);
  bool changed = true;
  std::size_t rounds = 0;
  while (changed && rounds <= events_.size()) {
    changed = false;
    ++rounds;
    for (const Edge& e : edges_) {
      if (depth[e.to] < depth[e.from] + 1) {
        depth[e.to] = depth[e.from] + 1;
        changed = true;
      }
    }
  }
  return *std::max_element(depth.begin(), depth.end());
}

std::vector<std::uint32_t> Moviola::events_per_actor() const {
  std::vector<std::uint32_t> out(log_.per_actor.size(), 0);
  for (const Event& e : events_) ++out[e.actor];
  return out;
}

Moviola::Bottleneck Moviola::bottleneck() const {
  std::map<std::uint32_t, std::uint32_t> chain;  // object -> event count
  for (const Event& e : events_) ++chain[e.entry.object];
  Bottleneck b;
  for (const auto& [obj, n] : chain) {
    if (n > b.chain) {
      b.object = obj;
      b.chain = n;
      b.name = obj < log_.object_names.size() ? log_.object_names[obj]
                                              : "obj" + std::to_string(obj);
    }
  }
  return b;
}

std::string Moviola::to_dot() const {
  std::ostringstream os;
  os << "digraph moviola {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::uint32_t i = 0; i < events_.size(); ++i) {
    const Event& ev = events_[i];
    const std::string obj =
        ev.entry.object < log_.object_names.size()
            ? log_.object_names[ev.entry.object]
            : "obj" + std::to_string(ev.entry.object);
    os << "  e" << i << " [label=\"P" << ev.actor << "."
       << ev.seq << " " << (ev.entry.is_write ? "W" : "R") << "(" << obj
       << ",v" << ev.entry.version << ")\"];\n";
  }
  // Same-actor chains solid, cross-actor dashed.
  for (const Edge& e : edges_) {
    const bool same = events_[e.from].actor == events_[e.to].actor;
    os << "  e" << e.from << " -> e" << e.to
       << (same ? ";\n" : " [style=dashed];\n");
  }
  os << "}\n";
  return os.str();
}

std::string Moviola::deadlock_report(chrys::Kernel& k, sim::Machine& m) {
  std::ostringstream os;
  const auto blocked = k.blocked_processes();
  os << (m.deadlocked() ? "DEADLOCK" : "running") << ": " << blocked.size()
     << " blocked process(es)\n";
  for (const auto& b : blocked) {
    os << "  " << b.name << " (oid " << b.process << ") waiting on ";
    if (b.waiting_on == chrys::kNoObject) {
      os << "<nothing recorded>";
    } else {
      os << (k.object_alive(b.waiting_on)
                 ? (k.object_kind(b.waiting_on) == chrys::ObjKind::kEvent
                        ? "event "
                        : "dual queue ")
                 : "dead object ")
         << b.waiting_on;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace bfly::replay
