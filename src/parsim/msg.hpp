// Cross-shard messages for the parallel host engine.
//
// When a Machine runs with host_shards > 1, every simulated interaction that
// crosses a shard boundary — a remote memory reference, a block transfer
// leg, a wakeup of a fiber on another shard — travels as a Msg through a
// Mailbox (mailbox.hpp) and is applied by the *owning* shard at the message's
// simulated arrival time.  The conservative window protocol (driver.hpp)
// guarantees a message is always delivered at least one switch traversal in
// the simulated future, so no shard ever receives a message for a time it
// has already executed past.
//
// Delivery order is part of the determinism contract: messages are sorted by
// (arrive, src_node, seq), where seq is a per-sender-*node* counter.  None
// of those three keys depends on the number of shards or host threads, which
// is what makes a parallel run bit-identical across host_shards = 2/4/8 and
// any thread count (see DESIGN.md §4f).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/observe.hpp"
#include "sim/time.hpp"

namespace bfly::parsim {

enum class MsgKind : std::uint8_t {
  kRef,         ///< single remote reference (read/write/atomic); round trip
  kAccessWords, ///< aggregate n-word reference burst; round trip
  kBlockRead,   ///< block-transfer head + stream from a remote module
  kBlockWrite,  ///< block-transfer into a remote module (round trip when
                ///< waiter != nullptr, fire-and-forget apply otherwise)
  kReply,       ///< completion for any round-trip request
  kWake,        ///< cross-shard Machine::wakeup()
};

/// Word-level operation carried by a kRef request.  The data side of the
/// reference is applied by the home shard at arrival time, which linearizes
/// atomics exactly like the real PNC: in memory-module arrival order.
enum class RefOp : std::uint8_t {
  kRead,
  kWrite,
  kFetchAdd,
  kFetchOr,
  kTestAndSet,
  kSwap,  ///< atomic exchange (operand in, previous value back)
  kCas,   ///< compare-and-swap; operand packs (expect << 32) | desired,
          ///< previous value back (caller compares against expect)
};

struct Msg {
  sim::Time arrive = 0;       ///< simulated delivery time at the destination
  std::uint64_t seq = 0;      ///< per-sender-node sequence (tie-break)
  std::uint32_t src_node = 0; ///< sending node (tie-break before seq)
  MsgKind kind = MsgKind::kRef;
  RefOp op = RefOp::kRead;    ///< for kRef
  std::uint32_t words = 0;    ///< reference width in 32-bit words
  std::uint32_t bytes = 0;    ///< exact byte count for data movement
  sim::PhysAddr addr;         ///< target address (addr.node = home module)
  std::uint64_t value = 0;    ///< operand out / result back (<= 8 bytes)
  sim::Time t0 = 0;           ///< request: issue time; block reply: head time
  sim::Time queue_ns = 0;     ///< reply: queue share measured at the home
  void* waiter = nullptr;     ///< requester context (FiberCtl* / Fiber*)
  std::uint32_t waiter_shard = 0;  ///< shard to route the reply to
  std::vector<std::uint8_t> blob;  ///< block-transfer payload (else empty)
};

/// Deterministic delivery order.  Strict weak; total for distinct messages
/// because (src_node, seq) never repeats within a run.
inline bool msg_before(const Msg& a, const Msg& b) {
  if (a.arrive != b.arrive) return a.arrive < b.arrive;
  if (a.src_node != b.src_node) return a.src_node < b.src_node;
  return a.seq < b.seq;
}

}  // namespace bfly::parsim
