#include "parsim/driver.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace bfly::parsim {

Driver::Driver(ShardProgram& prog, std::uint32_t shards,
               std::uint32_t threads, sim::Time lookahead)
    : prog_(prog),
      shards_(shards),
      threads_(std::max(1u, std::min(threads, shards))),
      lookahead_(lookahead),
      next_(shards, kTimeNever),
      barrier_(std::max(1u, std::min(threads, shards))) {}

void Driver::compute_edge() {
  // Worker 0 only, between the first and second barrier of a window.
  sim::Time min = kTimeNever;
  for (sim::Time t : next_) min = std::min(min, t);
  if (min == kTimeNever || failed_.load(std::memory_order_relaxed)) {
    done_ = true;
    return;
  }
  // Advance by at least one time unit: shard_window executes strictly
  // below the edge, so a zero lookahead would otherwise never execute the
  // minimum event and the loop would spin forever.  Every real fabric has
  // lookahead >= one switch hop; the floor only matters for degenerate
  // programs, which thereby serialize to one-tick lockstep windows.
  // Saturating add keeps a pathological lookahead from wrapping the edge
  // back below the minimum.
  const sim::Time advance = std::max<sim::Time>(lookahead_, 1);
  edge_ = (min > kTimeNever - advance) ? kTimeNever : min + advance;
  ++stats_.windows;
}

void Driver::worker(std::uint32_t w) {
  std::uint64_t waited = 0;
  while (true) {
    if (!failed_.load(std::memory_order_relaxed)) {
      try {
        for (std::uint32_t s = w; s < shards_; s += threads_) {
          prog_.shard_drain(s);
          next_[s] = prog_.shard_next_time(s);
        }
      } catch (...) {
        std::lock_guard<std::mutex> g(error_mu_);
        if (!error_) error_ = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    waited += barrier_.arrive_and_wait();
    if (w == 0) compute_edge();
    waited += barrier_.arrive_and_wait();
    if (done_) break;
    if (!failed_.load(std::memory_order_relaxed)) {
      try {
        for (std::uint32_t s = w; s < shards_; s += threads_)
          prog_.shard_window(s, edge_);
      } catch (...) {
        std::lock_guard<std::mutex> g(error_mu_);
        if (!error_) error_ = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    waited += barrier_.arrive_and_wait();
  }
  barrier_wait_ns_.fetch_add(waited, std::memory_order_relaxed);
}

void Driver::run() {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> extra;
  extra.reserve(threads_ - 1);
  for (std::uint32_t w = 1; w < threads_; ++w)
    extra.emplace_back([this, w] { worker(w); });
  worker(0);  // the calling thread is worker 0
  for (std::thread& t : extra) t.join();
  stats_.barrier_wait_ns = barrier_wait_ns_.load(std::memory_order_relaxed);
  stats_.run_wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (error_) std::rethrow_exception(error_);
}

}  // namespace bfly::parsim
