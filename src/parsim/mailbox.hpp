// Cross-shard mailbox: one per destination shard.
//
// Senders (other shards' worker threads, mid-window) push under a short
// mutex; the owning shard drains at the start of the next window, after the
// driver's barrier, and sorts the batch into the deterministic delivery
// order (msg_before).  The mutex is per *destination* shard — striping by
// destination keeps contention bounded by the fan-in of one shard, and the
// critical section is a vector push_back.
//
// Determinism does not depend on arrival interleaving: whatever order sends
// land in the vector, drain() sorts by (arrive, src_node, seq), all three of
// which are host-schedule-independent.
#pragma once

#include <algorithm>
#include <mutex>
#include <utility>
#include <vector>

#include "parsim/msg.hpp"

namespace bfly::parsim {

class Mailbox {
 public:
  void send(Msg&& m) {
    std::lock_guard<std::mutex> g(mu_);
    in_.push_back(std::move(m));
  }

  /// Move every pending message into *out (appending), sorted into
  /// deterministic delivery order.  Called by the owning shard only, between
  /// windows, so no sender races the sort.
  void drain(std::vector<Msg>* out) {
    {
      std::lock_guard<std::mutex> g(mu_);
      if (in_.empty()) return;
      std::move(in_.begin(), in_.end(), std::back_inserter(*out));
      in_.clear();
    }
    std::sort(out->begin(), out->end(), msg_before);
  }

  /// Messages currently queued (sent but not yet drained).  Exact between
  /// windows; a point-in-time snapshot mid-window.  Feeds the global
  /// quiescence check: a non-empty mailbox means pending fiber work.
  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return in_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Msg> in_;
};

}  // namespace bfly::parsim
