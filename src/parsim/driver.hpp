// Conservative time-window driver for sharded discrete-event simulation.
//
// The driver owns the host threads and the window protocol; the simulation
// itself stays behind the ShardProgram interface, so this layer never
// depends on Machine, fibers, or memory modules (which is also what makes it
// unit-testable under ThreadSanitizer without fiber annotations).
//
// Protocol per window, with shard s statically owned by worker s % threads:
//
//   1. drain    — each worker moves its shards' mailbox batches into their
//                 event heaps, then publishes each shard's next event time;
//   2. barrier  — worker 0 computes the global window edge
//                 min(next times) + lookahead (or declares the run done
//                 when every shard is idle and every mailbox empty);
//   3. barrier  — everyone reads the edge;
//   4. window   — each shard executes events strictly before the edge;
//                 cross-shard sends go to mailboxes;
//   5. barrier  — sends become visible, loop to 1.
//
// Safety argument (the "hop-latency lookahead"): every cross-shard message
// sent by an event at time t arrives no earlier than t + lookahead, and
// every event executed this window has t >= T (the global minimum), so all
// arrivals land at or past T + lookahead — exactly the edge no shard
// executes up to.  See DESIGN.md §4f for the full sketch.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <vector>

#include "parsim/barrier.hpp"
#include "sim/time.hpp"

namespace bfly::parsim {

/// Sentinel next-event time for an idle shard.
inline constexpr sim::Time kTimeNever = std::numeric_limits<sim::Time>::max();

/// The simulation side of the protocol.  All three hooks are called on the
/// worker thread that owns the shard, never concurrently for one shard.
class ShardProgram {
 public:
  virtual ~ShardProgram() = default;

  /// Move the shard's pending mailbox messages into its event heap.
  virtual void shard_drain(std::uint32_t shard) = 0;

  /// Earliest pending event time for the shard, kTimeNever when idle.
  /// Called after shard_drain in the same phase, so it must include the
  /// just-drained messages.
  virtual sim::Time shard_next_time(std::uint32_t shard) = 0;

  /// Execute every event with time strictly before `edge`.
  virtual void shard_window(std::uint32_t shard, sim::Time edge) = 0;
};

struct DriverStats {
  std::uint64_t windows = 0;          ///< window iterations executed
  std::uint64_t barrier_wait_ns = 0;  ///< host ns blocked in barriers, all threads
  std::uint64_t run_wall_ns = 0;      ///< host wall time of run()
};

class Driver {
 public:
  /// `lookahead` must lower-bound the simulated latency of every cross-shard
  /// message (the Machine passes the full switch traversal).  A zero
  /// lookahead still terminates — each window then runs exactly the events
  /// at the global minimum time — but degenerates to lockstep.
  Driver(ShardProgram& prog, std::uint32_t shards, std::uint32_t threads,
         sim::Time lookahead);

  /// Run windows until every shard is idle.  Rethrows the first exception a
  /// worker callback raised (the run is unrecoverable past that point).
  void run();

  const DriverStats& stats() const { return stats_; }

 private:
  void worker(std::uint32_t w);
  void compute_edge();

  ShardProgram& prog_;
  const std::uint32_t shards_;
  const std::uint32_t threads_;
  const sim::Time lookahead_;

  // Window-protocol shared state.  Plain fields: every cross-thread
  // hand-off happens across a SpinBarrier (acquire/release), and each
  // next_[s] slot has exactly one writer per phase.
  std::vector<sim::Time> next_;
  sim::Time edge_ = 0;
  bool done_ = false;
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  std::mutex error_mu_;
  SpinBarrier barrier_;
  std::atomic<std::uint64_t> barrier_wait_ns_{0};
  DriverStats stats_;
};

}  // namespace bfly::parsim
