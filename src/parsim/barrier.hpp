// Sense-reversing spin barrier for the window protocol.
//
// Three barriers bound every window (see driver.cpp), so barrier cost is the
// parallel engine's synchronization overhead — arrive_and_wait() therefore
// returns the host nanoseconds the caller spent waiting, which the driver
// sums into its barrier-overhead statistic.
//
// The spin yields to the OS after a short burst: simulation shards are
// frequently oversubscribed (more worker threads than host cores, e.g. the
// 8-shard bench sweep on a small CI box), and a pure spin would deadlock the
// scheduler's patience if not the barrier itself.
//
// Memory ordering: the last arriver publishes with a release store on the
// sense word; waiters spin with acquire loads.  Everything written by any
// participant before the barrier is visible to every participant after it —
// the property the mailbox drain and the shared window-edge word rely on
// (and that ThreadSanitizer checks in the parsim core tests).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace bfly::parsim {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties)
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all parties arrive.  Returns host ns spent waiting.
  std::uint64_t arrive_and_wait() {
    const bool sense = sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reset for the next phase and release the others.
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(!sense, std::memory_order_release);
      return 0;
    }
    const auto start = std::chrono::steady_clock::now();
    std::uint32_t spins = 0;
    while (sense_.load(std::memory_order_acquire) == sense) {
      if (++spins >= kSpinBurst) {
        spins = 0;
        std::this_thread::yield();
      }
    }
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

 private:
  static constexpr std::uint32_t kSpinBurst = 256;

  const std::uint32_t parties_;
  std::atomic<std::uint32_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace bfly::parsim
