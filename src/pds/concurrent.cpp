#include "pds/concurrent.hpp"

namespace bfly::pds {

// --- ExtendibleHash -----------------------------------------------------------

ExtendibleHash::ExtendibleHash(sim::Machine& m, std::uint32_t bucket_capacity,
                               sim::NodeId dir_home)
    : m_(m), capacity_(bucket_capacity) {
  dir_lock_ = m_.alloc(dir_home, 4);
  m_.poke<std::uint32_t>(dir_lock_, 0);
  // Two initial buckets on different nodes.
  for (std::uint32_t b = 0; b < 2; ++b) {
    Bucket bk;
    bk.home = (dir_home + 1 + b) % m_.nodes();
    bk.lock = m_.alloc(bk.home, 4);
    m_.poke<std::uint32_t>(bk.lock, 0);
    bk.local_depth = 1;
    buckets_.push_back(std::move(bk));
  }
  directory_ = {0, 1};
}

void ExtendibleHash::charge_scan(std::size_t items) {
  // Reading a bucket's entries: two words per item, at its home module.
  if (items > 0)
    m_.access_words(buckets_[0].lock,
                    static_cast<std::uint32_t>(2 * items));
  m_.compute(2 * items + 4);
}

ExtendibleHash::Bucket& ExtendibleHash::bucket_for(std::uint64_t key) {
  // Directory lookup: one read of the (possibly remote) directory word.
  const std::uint64_t h = hash(key);
  const std::uint32_t mask = (1u << global_depth_) - 1;
  m_.access_words(dir_lock_, 1);
  return buckets_[directory_[h & mask]];
}

bool ExtendibleHash::find(std::uint64_t key, std::uint64_t* value) {
  Bucket& b = bucket_for(key);
  chrys::SpinLock lock(m_, b.lock);
  lock.acquire();
  charge_scan(b.items.size());
  for (const auto& [k, v] : b.items) {
    if (k == key) {
      *value = v;
      lock.release();
      return true;
    }
  }
  lock.release();
  return false;
}

void ExtendibleHash::insert(std::uint64_t key, std::uint64_t value) {
  while (true) {
    const std::uint64_t h = hash(key);
    const std::uint32_t mask = (1u << global_depth_) - 1;
    m_.access_words(dir_lock_, 1);
    const std::uint32_t dir_index = static_cast<std::uint32_t>(h & mask);
    const std::uint32_t bucket_id = directory_[dir_index];
    Bucket& b = buckets_[bucket_id];
    chrys::SpinLock lock(m_, b.lock);
    lock.acquire();
    // Re-check the directory under the lock (a split may have moved us).
    const std::uint32_t mask2 = (1u << global_depth_) - 1;
    if (directory_[h & mask2] != bucket_id) {
      lock.release();
      continue;
    }
    charge_scan(b.items.size());
    for (auto& [k, v] : b.items) {
      if (k == key) {
        v = value;
        lock.release();
        return;
      }
    }
    if (b.items.size() < capacity_) {
      b.items.emplace_back(key, value);
      m_.access_words(b.lock, 2);  // write the new entry
      ++entries_;
      lock.release();
      return;
    }
    // Split: takes the directory lock only if the directory must double.
    split(dir_index);
    lock.release();
  }
}

void ExtendibleHash::split(std::uint32_t dir_index) {
  const std::uint32_t old_id = directory_[dir_index];
  Bucket& old_b = buckets_[old_id];
  ++splits_;
  if (old_b.local_depth == global_depth_) {
    // Double the directory under the directory lock.
    chrys::SpinLock dl(m_, dir_lock_);
    dl.acquire();
    const std::size_t n = directory_.size();
    directory_.resize(2 * n);
    for (std::size_t i = 0; i < n; ++i) directory_[n + i] = directory_[i];
    ++global_depth_;
    m_.access_words(dir_lock_, static_cast<std::uint32_t>(n));
    dl.release();
  }
  // New bucket takes the entries whose next hash bit is 1.
  Bucket nb;
  nb.home = (old_b.home + 1) % m_.nodes();
  nb.lock = m_.alloc(nb.home, 4);
  m_.poke<std::uint32_t>(nb.lock, 0);
  nb.local_depth = old_b.local_depth + 1;
  const std::uint32_t new_id = static_cast<std::uint32_t>(buckets_.size());
  const std::uint32_t bit = 1u << old_b.local_depth;
  old_b.local_depth++;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> keep;
  for (const auto& kv : old_b.items) {
    if (hash(kv.first) & bit) nb.items.push_back(kv);
    else keep.push_back(kv);
  }
  old_b.items = std::move(keep);
  // The bucket must exist BEFORE any directory entry names it: the charge
  // below yields, and another fiber may follow the fresh entry immediately.
  buckets_.push_back(std::move(nb));
  for (std::size_t i = 0; i < directory_.size(); ++i)
    if (directory_[i] == old_id && (i & bit)) directory_[i] = new_id;
  charge_scan(buckets_[old_id].items.size() + buckets_[new_id].items.size());
  m_.access_words(dir_lock_, 4);
}

// --- FetchAndPhiQueue ------------------------------------------------------------

FetchAndPhiQueue::FetchAndPhiQueue(sim::Machine& m, std::uint32_t capacity,
                                   sim::NodeId home)
    : m_(m), capacity_(capacity) {
  head_ = m_.alloc(home, 4);
  tail_ = m_.alloc((home + 1) % m_.nodes(), 4);
  // Slots and flags scattered over the nodes so slot traffic spreads.
  flags_ = m_.alloc((home + 2) % m_.nodes(), capacity * 4);
  slots_ = m_.alloc((home + 3) % m_.nodes(), capacity * 4);
  m_.poke<std::uint32_t>(head_, 0);
  m_.poke<std::uint32_t>(tail_, 0);
  for (std::uint32_t i = 0; i < capacity; ++i)
    m_.poke<std::uint32_t>(flags_.plus(4 * i), 0);
}

void FetchAndPhiQueue::enqueue(std::uint32_t v) {
  // One fetch-and-add claims a slot; no lock, no critical section.
  const std::uint32_t ticket = m_.fetch_add_u32(tail_, 1);
  const std::uint32_t slot = ticket % capacity_;
  // Wait for the slot to drain if a full lap is in flight.
  while (m_.read<std::uint32_t>(flags_.plus(4 * slot)) != 0)
    m_.charge(5 * sim::kMicrosecond);
  m_.write<std::uint32_t>(slots_.plus(4 * slot), v);
  m_.write<std::uint32_t>(flags_.plus(4 * slot), 1);
  ++enqueues_;
}

std::uint32_t FetchAndPhiQueue::dequeue() {
  const std::uint32_t ticket = m_.fetch_add_u32(head_, 1);
  const std::uint32_t slot = ticket % capacity_;
  while (m_.read<std::uint32_t>(flags_.plus(4 * slot)) == 0)
    m_.charge(5 * sim::kMicrosecond);
  const std::uint32_t v = m_.read<std::uint32_t>(slots_.plus(4 * slot));
  m_.write<std::uint32_t>(flags_.plus(4 * slot), 0);
  return v;
}

bool FetchAndPhiQueue::try_dequeue(std::uint32_t* out) {
  // Optimistic check; only claim a ticket when something is visible.
  const std::uint32_t h = m_.read<std::uint32_t>(head_);
  const std::uint32_t t = m_.read<std::uint32_t>(tail_);
  if (h == t) return false;
  *out = dequeue();
  return true;
}

// --- LockedQueue ----------------------------------------------------------------

LockedQueue::LockedQueue(sim::Machine& m, sim::NodeId home) : m_(m) {
  lock_ = m_.alloc(home, 4);
  m_.poke<std::uint32_t>(lock_, 0);
}

void LockedQueue::enqueue(std::uint32_t v) {
  chrys::SpinLock lock(m_, lock_);
  lock.acquire();
  m_.access_words(lock_, 3);  // head/tail/slot updates under the lock
  items_.push_back(v);
  lock.release();
}

bool LockedQueue::try_dequeue(std::uint32_t* out) {
  chrys::SpinLock lock(m_, lock_);
  lock.acquire();
  m_.access_words(lock_, 3);
  const bool ok = head_ < items_.size();
  if (ok) *out = items_[head_++];
  lock.release();
  return ok;
}

}  // namespace bfly::pds
