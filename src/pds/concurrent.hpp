// Highly-parallel concurrent data structures (Section 3.3): extendible
// hashing for concurrent operations (Ellis, TR 110) and practical
// fetch-and-phi queues (Mellor-Crummey, TR 229).
//
// Both structures live in the simulated machine's shared memory: every
// lock word, ticket counter and slot flag is a real timed memory cell, so
// contention on them is the contention the paper is about.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "chrysalis/kernel.hpp"
#include "chrysalis/spinlock.hpp"

namespace bfly::pds {

/// Ellis-style extendible hash table with per-bucket locks: lookups and
/// inserts on different buckets proceed concurrently; a bucket split takes
/// only that bucket's lock (plus a short directory lock when the directory
/// must double).
class ExtendibleHash {
 public:
  /// `bucket_capacity` entries per bucket before a split.
  ExtendibleHash(sim::Machine& m, std::uint32_t bucket_capacity = 8,
                 sim::NodeId dir_home = 0);

  /// Insert or overwrite.  Safe to call from any number of processes.
  void insert(std::uint64_t key, std::uint64_t value);
  /// Returns true and fills *value when present.
  bool find(std::uint64_t key, std::uint64_t* value);

  std::uint32_t global_depth() const { return global_depth_; }
  std::uint64_t entries() const { return entries_; }
  std::uint64_t splits() const { return splits_; }

 private:
  struct Bucket {
    sim::PhysAddr lock{};
    std::uint32_t local_depth = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> items;
    sim::NodeId home = 0;
  };

  static std::uint64_t hash(std::uint64_t k) {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return k;
  }
  Bucket& bucket_for(std::uint64_t key);
  void split(std::uint32_t dir_index);
  void charge_scan(std::size_t items);

  sim::Machine& m_;
  std::uint32_t capacity_;
  std::uint32_t global_depth_ = 1;
  sim::PhysAddr dir_lock_{};
  std::vector<std::uint32_t> directory_;      // dir index -> bucket id
  std::deque<Bucket> buckets_;  // stable refs across fiber yields
  std::uint64_t entries_ = 0;
  std::uint64_t splits_ = 0;
};

/// Mellor-Crummey-style array queue built on fetch-and-add tickets: an
/// enqueuer takes a slot with one atomic, then marks it full; a dequeuer
/// takes a ticket and spins briefly for its slot.  No global lock; the only
/// serialization is the ticket counters themselves.
class FetchAndPhiQueue {
 public:
  FetchAndPhiQueue(sim::Machine& m, std::uint32_t capacity,
                   sim::NodeId home = 0);

  /// Blocking-by-spin enqueue/dequeue of a 32-bit datum.
  void enqueue(std::uint32_t v);
  std::uint32_t dequeue();
  bool try_dequeue(std::uint32_t* out);

  std::uint64_t enqueues() const { return enqueues_; }

 private:
  sim::Machine& m_;
  std::uint32_t capacity_;
  sim::PhysAddr head_{};   // dequeue ticket counter
  sim::PhysAddr tail_{};   // enqueue ticket counter
  sim::PhysAddr flags_{};  // per-slot full flags (1 word each)
  sim::PhysAddr slots_{};  // per-slot data
  std::uint64_t enqueues_ = 0;
};

/// The baseline both structures are measured against: a single global
/// spin lock around a host-side queue — the serial bottleneck shape.
class LockedQueue {
 public:
  LockedQueue(sim::Machine& m, sim::NodeId home = 0);
  void enqueue(std::uint32_t v);
  bool try_dequeue(std::uint32_t* out);

 private:
  sim::Machine& m_;
  sim::PhysAddr lock_{};
  std::vector<std::uint32_t> items_;
  std::size_t head_ = 0;
};

}  // namespace bfly::pds
