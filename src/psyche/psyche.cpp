#include "psyche/psyche.hpp"

#include <algorithm>

namespace bfly::psyche {

namespace {
// Cost model for the three access modes.  An optimized invocation is "as
// efficient as a procedure call"; a kernel-mediated call pays trap plus
// dispatch; a full validation walks the access list.
constexpr sim::Time kProcedureCall = 3 * sim::kMicrosecond;
constexpr sim::Time kKernelTrap = 40 * sim::kMicrosecond;
constexpr sim::Time kValidate = 250 * sim::kMicrosecond;
constexpr sim::Time kCacheLookup = 5 * sim::kMicrosecond;
}  // namespace

Psyche::Psyche(chrys::Kernel& k) : k_(k), m_(k.machine()) {}

RealmId Psyche::create_realm(sim::NodeId home, std::size_t bytes,
                             std::string name) {
  Realm r;
  r.name = std::move(name);
  r.bytes = bytes;
  if (bytes > 0) r.data = m_.alloc(home, bytes);
  r.base = next_base_;
  // Realm ranges are page-aligned in the uniform space.
  next_base_ += (bytes + 0xfffu) & ~0xfffull;
  if (sim::Fiber::current() != nullptr) m_.charge(150 * sim::kMicrosecond);
  realms_.push_back(std::move(r));
  return static_cast<RealmId>(realms_.size() - 1);
}

std::uint64_t Psyche::realm_base(RealmId r) const { return realms_[r].base; }

sim::PhysAddr Psyche::resolve(std::uint64_t ua) const {
  for (const Realm& r : realms_) {
    if (ua >= r.base && ua < r.base + r.bytes)
      return r.data.plus(ua - r.base);
  }
  throw chrys::ThrowSignal{chrys::kThrowSegmentFault,
                           static_cast<std::uint32_t>(ua)};
}

void Psyche::define_operation(RealmId r, std::string op, Operation fn) {
  realms_[r].ops[std::move(op)] = std::move(fn);
}

Key Psyche::mint_key(RealmId r, std::uint32_t rights) {
  const Key key = next_key_++;
  realms_[r].access_list[key] = rights;
  return key;
}

void Psyche::revoke_key(RealmId r, Key key) {
  realms_[r].access_list.erase(key);
  // Lazy caches are stamped with the realm generation; bumping it forces
  // the next protected access to re-validate.
  realms_[r].generation++;
}

void Psyche::hold_key(Key key) { held_[k_.self().oid()].push_back(key); }

std::uint32_t Psyche::rights_of_current(RealmId r, Access access) {
  const chrys::Oid who = k_.self().oid();
  Realm& realm = realms_[r];
  const std::uint64_t ck =
      (static_cast<std::uint64_t>(who) << 32) | r;

  if (access == Access::kProtected) {
    auto it = priv_cache_.find(ck);
    if (it != priv_cache_.end() && it->second.valid &&
        it->second.generation == realm.generation) {
      m_.charge(kCacheLookup);
      ++cache_hits_;
      return it->second.rights;
    }
  }
  // Full validation: walk the caller's keys against the access list.
  m_.charge(kValidate);
  ++validations_;
  std::uint32_t rights = kNoRights;
  auto hit = held_.find(who);
  if (hit != held_.end()) {
    for (Key key : hit->second) {
      auto al = realm.access_list.find(key);
      if (al != realm.access_list.end()) rights |= al->second;
    }
  }
  priv_cache_[ck] = CacheEntry{rights, realm.generation, true};
  return rights;
}

std::uint64_t Psyche::invoke(RealmId r, const std::string& op,
                             std::uint64_t arg, Access access) {
  Realm& realm = realms_[r];
  auto it = realm.ops.find(op);
  if (it == realm.ops.end())
    throw chrys::ThrowSignal{chrys::kThrowBadObject, r};

  switch (access) {
    case Access::kOptimized:
      // No protection boundary: the call is a procedure call.  The paper's
      // explicit tradeoff: you got speed, you gave up the check.
      m_.charge(kProcedureCall);
      break;
    case Access::kProtected: {
      m_.charge(kKernelTrap);
      if ((rights_of_current(r, access) & kInvoke) == 0)
        throw chrys::ThrowSignal{chrys::kThrowNotOwner, r};
      break;
    }
    case Access::kParanoid: {
      m_.charge(kKernelTrap);
      if ((rights_of_current(r, access) & kInvoke) == 0)
        throw chrys::ThrowSignal{chrys::kThrowNotOwner, r};
      break;
    }
  }
  return it->second(arg);
}

}  // namespace bfly::psyche
