// Psyche — a general-purpose multiprocessor operating system prototype
// (Scott, LeBlanc & Marsh, ICPP'88; Sections 3.4 and 4.2 of the paper).
//
// The lesson driving Psyche: "no one model of process state or style of
// communication will prove appropriate for all applications ... Truly
// general-purpose parallel computing demands an operating system that
// supports these models as well, and that allows program fragments written
// under different models to coexist and interact."
//
// Psyche's mechanisms, prototyped here on the simulated Butterfly:
//   * realms — passive data abstractions living in a single UNIFORM
//     virtual address space (every realm has a machine-wide unique address
//     range, so pointers can be passed freely between threads of control);
//   * access protocols — operations a realm exports; invoking them is how
//     sharing happens;
//   * keys and access lists — rights are checked LAZILY: the first
//     protected invocation validates the caller's key against the realm's
//     access list (expensive) and caches the privilege; subsequent calls
//     pay almost nothing ("users pay for protection only when necessary");
//   * the protection/performance dial — in the absence of protection
//     boundaries an invocation is "as efficient as a procedure call or a
//     pointer dereference" (optimized access), while fully enforced calls
//     go through the kernel every time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chrysalis/kernel.hpp"

namespace bfly::psyche {

using RealmId = std::uint32_t;
using Key = std::uint64_t;

enum Rights : std::uint32_t {
  kNoRights = 0,
  kInvoke = 1,
  kRead = 2,
  kWrite = 4,
  kAllRights = kInvoke | kRead | kWrite,
};

/// How much enforcement an invocation goes through.
enum class Access {
  kOptimized,  ///< no protection boundary: a procedure call
  kProtected,  ///< kernel-mediated; privileges evaluated lazily and cached
  kParanoid,   ///< kernel-mediated; full re-validation every call
};

/// A realm operation: takes/returns a 64-bit datum (larger state lives in
/// the realm's own memory).
using Operation = std::function<std::uint64_t(std::uint64_t)>;

class Psyche {
 public:
  explicit Psyche(chrys::Kernel& k);

  // --- Realms in the uniform address space ------------------------------
  /// Create a realm of `bytes` data on `home`.  Its data occupies a unique
  /// range of the uniform address space starting at realm_base().
  RealmId create_realm(sim::NodeId home, std::size_t bytes, std::string name);
  /// Uniform virtual address of the realm's data (unique machine-wide).
  std::uint64_t realm_base(RealmId r) const;
  /// Translate a uniform address to its physical location.
  sim::PhysAddr resolve(std::uint64_t uniform_addr) const;

  /// Timed data access through the uniform address space (rights checked
  /// against the calling process's cached privileges when protection is
  /// on).
  template <typename T>
  T uread(std::uint64_t ua) {
    return k_.machine().read<T>(resolve(ua));
  }
  template <typename T>
  void uwrite(std::uint64_t ua, T v) {
    k_.machine().write<T>(resolve(ua), v);
  }

  // --- Access protocols ---------------------------------------------------
  void define_operation(RealmId r, std::string op, Operation fn);

  /// Invoke `op` on realm `r`.  kOptimized charges a procedure call;
  /// kProtected validates the caller lazily (first call expensive, cached
  /// after); kParanoid validates every time.  Throws
  /// ThrowSignal{kThrowNotOwner} when the caller lacks kInvoke rights
  /// (protected/paranoid modes only — optimized access trades that check
  /// away, exactly the paper's explicit tradeoff).
  std::uint64_t invoke(RealmId r, const std::string& op, std::uint64_t arg,
                       Access access = Access::kProtected);

  // --- Keys and access lists ------------------------------------------------
  /// Mint a key carrying `rights` for realm `r` (added to its access list).
  Key mint_key(RealmId r, std::uint32_t rights);
  /// Revoke a key (removes the access-list entry; cached privileges are
  /// invalidated).
  void revoke_key(RealmId r, Key key);
  /// The calling process takes possession of a key.
  void hold_key(Key key);

  /// Cached privilege lookups performed vs full validations — the lazy
  /// evaluation observable.
  std::uint64_t validations() const { return validations_; }
  std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  struct Realm {
    std::string name;
    sim::PhysAddr data{};
    std::size_t bytes = 0;
    std::uint64_t base = 0;
    std::unordered_map<std::string, Operation> ops;
    std::unordered_map<Key, std::uint32_t> access_list;
    std::uint32_t generation = 0;  // bumped on revoke: invalidates caches
  };

  std::uint32_t rights_of_current(RealmId r, Access access);

  chrys::Kernel& k_;
  sim::Machine& m_;
  std::vector<Realm> realms_;
  std::uint64_t next_base_ = 0x100000000ull;  // uniform space above 4 GB
  std::uint64_t next_key_ = 0xbf1e0001ull;
  // Keys held per process (by oid), and the per-(process, realm) privilege
  // cache with the realm generation it was validated against.
  std::unordered_map<chrys::Oid, std::vector<Key>> held_;
  struct CacheEntry {
    std::uint32_t rights = 0;
    std::uint32_t generation = 0;
    bool valid = false;
  };
  std::unordered_map<std::uint64_t, CacheEntry> priv_cache_;  // (oid<<32|realm)
  std::uint64_t validations_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace bfly::psyche
