// Exporters and the critical-path / Amdahl analysis for bfly::scope.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "scope/scope.hpp"
#include "sim/json.hpp"

namespace bfly::scope {

namespace {

// Exact microsecond timestamp with nanosecond precision: the trace stays
// monotone because no floating-point rounding is involved.
void ts_us(sim::json::Writer& w, sim::Time ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  w.key("ts").raw(buf);
}

bool is(const char* s, const char* lit) {
  return s != nullptr && std::strcmp(s, lit) == 0;
}

}  // namespace

std::uint32_t Tracer::chrome_pid(sim::NodeId node) const {
  // pid 0 renders oddly in some viewers; nodes are 1-based in the trace,
  // the host context takes the pid after the last node.
  return node == sim::kTraceHostNode ? m_.nodes() + 1 : node + 1;
}

std::string Tracer::chrome_trace() const {
  using sim::json::Writer;
  Writer w;
  w.begin_object();
  w.kv("displayTimeUnit", "ns");
  w.key("otherData")
      .begin_object()
      .kv("tool", "bfly::scope")
      .kv("nodes", std::uint64_t{m_.nodes()})
      .kv("elapsed_ns", std::uint64_t{m_.now()})
      .kv("dropped_events", dropped_)
      .end_object();
  w.key("traceEvents").begin_array();

  // Metadata: name the per-node "processes" and per-fiber "threads".
  std::vector<bool> node_named(m_.nodes() + 2, false);
  auto name_process = [&](sim::NodeId node) {
    const std::uint32_t pid = chrome_pid(node);
    if (node_named[pid]) return;
    node_named[pid] = true;
    char label[32];
    if (node == sim::kTraceHostNode) {
      std::snprintf(label, sizeof label, "host");
    } else {
      std::snprintf(label, sizeof label, "node %u", node);
    }
    w.begin_object()
        .kv("ph", "M")
        .kv("name", "process_name")
        .kv("pid", std::uint64_t{pid})
        .key("args")
        .begin_object()
        .kv("name", label)
        .end_object()
        .end_object();
    // Keep the node panes in machine order in the viewer.
    w.begin_object()
        .kv("ph", "M")
        .kv("name", "process_sort_index")
        .kv("pid", std::uint64_t{pid})
        .key("args")
        .begin_object()
        .kv("sort_index", std::uint64_t{pid})
        .end_object()
        .end_object();
  };
  for (const Track& t : tracks_) {
    name_process(t.node);
    w.begin_object()
        .kv("ph", "M")
        .kv("name", "thread_name")
        .kv("pid", std::uint64_t{chrome_pid(t.node)})
        .kv("tid", std::uint64_t{t.tid})
        .key("args")
        .begin_object()
        .kv("name", t.name)
        .end_object()
        .end_object();
  }
  for (sim::NodeId n = 0; n < m_.nodes(); ++n) {
    const NodeSeries& s = series_[n];
    if (!s.occupancy_ns.empty() || !s.local_words.empty() ||
        !s.remote_words.empty()) {
      name_process(n);
    }
  }

  // The span/instant log is time-ordered by construction; the counter
  // samples are generated in bin order.  Merge the two sorted streams so
  // the whole trace stays monotone.
  const sim::Time now = m_.now();
  std::size_t bin = 0;
  const std::size_t bins = series_.empty() ? 0 : max_bin_ + 1;
  auto emit_counters_until = [&](sim::Time t) {
    for (; bin < bins && static_cast<sim::Time>(bin) * opt_.bin_ns <= t;
         ++bin) {
      const sim::Time at = static_cast<sim::Time>(bin) * opt_.bin_ns;
      for (sim::NodeId n = 0; n < m_.nodes(); ++n) {
        const NodeSeries& s = series_[n];
        auto get = [&](const auto& v) -> double {
          return bin < v.size() ? static_cast<double>(v[bin]) : 0.0;
        };
        const double occ = get(s.occupancy_ns);
        const double que = get(s.queue_ns);
        const double loc = get(s.local_words);
        const double rem = get(s.remote_words);
        if (occ == 0 && que == 0 && loc == 0 && rem == 0) continue;
        const std::uint64_t pid = chrome_pid(n);
        w.begin_object().kv("ph", "C").kv("name", "module").kv("pid", pid);
        ts_us(w, at);
        w.key("args")
            .begin_object()
            .kv("busy_frac", occ / static_cast<double>(opt_.bin_ns))
            .kv("queue_frac", que / static_cast<double>(opt_.bin_ns))
            .end_object()
            .end_object();
        w.begin_object().kv("ph", "C").kv("name", "refs").kv("pid", pid);
        ts_us(w, at);
        w.key("args")
            .begin_object()
            .kv("local_words", static_cast<std::uint64_t>(loc))
            .kv("remote_words", static_cast<std::uint64_t>(rem))
            .end_object()
            .end_object();
      }
    }
  };

  std::vector<std::uint32_t> open(tracks_.size(), 0);
  for (const Event& e : events_) {
    emit_counters_until(e.at);
    const Track& t = tracks_[e.track];
    const std::uint64_t pid = chrome_pid(t.node);
    const std::uint64_t tid = t.tid;
    switch (e.kind) {
      case Event::kBegin:
        w.begin_object()
            .kv("ph", "B")
            .kv("pid", pid)
            .kv("tid", tid)
            .kv("cat", e.cat)
            .kv("name", e.name);
        ts_us(w, e.at);
        w.key("args").begin_object().kv("arg", e.arg).end_object();
        w.end_object();
        ++open[e.track];
        break;
      case Event::kEnd:
        w.begin_object().kv("ph", "E").kv("pid", pid).kv("tid", tid);
        ts_us(w, e.at);
        w.end_object();
        --open[e.track];
        break;
      case Event::kInstant:
        w.begin_object()
            .kv("ph", "i")
            .kv("s", "t")
            .kv("pid", pid)
            .kv("tid", tid)
            .kv("cat", e.cat)
            .kv("name", e.name);
        ts_us(w, e.at);
        w.key("args").begin_object().kv("arg", e.arg).end_object();
        w.end_object();
        break;
    }
  }
  emit_counters_until(now);
  // Close anything still open so every B has its E.
  for (std::size_t i = 0; i < open.size(); ++i) {
    for (std::uint32_t k = 0; k < open[i]; ++k) {
      w.begin_object()
          .kv("ph", "E")
          .kv("pid", std::uint64_t{chrome_pid(tracks_[i].node)})
          .kv("tid", std::uint64_t{tracks_[i].tid});
      ts_us(w, now);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.take();
}

CriticalPathReport Tracer::critical_path() const {
  CriticalPathReport r;
  r.elapsed = m_.now();
  const std::vector<Span> spans = completed_spans();

  // Pull out the Uniform System task graph: task spans, barrier ends.
  std::vector<Span> tasks;
  std::vector<sim::Time> barriers;
  std::vector<bool> worker_track(tracks_.size(), false);
  for (const Span& s : spans) {
    if (is(s.cat, "us") && is(s.name, "task")) {
      tasks.push_back(s);
      worker_track[s.track] = true;
    } else if (is(s.cat, "us") && is(s.name, "wait_idle")) {
      barriers.push_back(s.end);
    }
  }
  r.tasks = tasks.size();
  for (std::size_t i = 0; i < worker_track.size(); ++i)
    if (worker_track[i]) ++r.workers;
  for (const Span& t : tasks) r.task_busy += t.end - t.begin;

  // Concurrency sweep: how much of the run had <= 1 task in flight?
  // (Spans are begin-ordered; merge begin/end event lists.)
  {
    std::vector<sim::Time> ends;
    ends.reserve(tasks.size());
    for (const Span& t : tasks) ends.push_back(t.end);
    std::sort(ends.begin(), ends.end());
    std::size_t bi = 0, ei = 0;
    std::uint64_t active = 0;
    sim::Time prev = 0;
    sim::Time parallel_ns = 0;  // time with >= 2 active
    while (bi < tasks.size() || ei < ends.size()) {
      sim::Time t;
      bool isb;
      if (bi < tasks.size() &&
          (ei >= ends.size() || tasks[bi].begin < ends[ei])) {
        t = tasks[bi].begin;
        isb = true;
      } else {
        t = ends[ei];
        isb = false;
      }
      if (active >= 2) parallel_ns += t - prev;
      prev = t;
      if (isb) {
        ++active;
        ++bi;
      } else {
        --active;
        ++ei;
      }
    }
    r.serial_ns = r.elapsed > parallel_ns ? r.elapsed - parallel_ns : 0;
  }
  r.serial_fraction = r.elapsed != 0
                          ? static_cast<double>(r.serial_ns) /
                                static_cast<double>(r.elapsed)
                          : 0.0;
  r.avg_parallelism = r.elapsed != 0
                          ? static_cast<double>(r.task_busy) /
                                static_cast<double>(r.elapsed)
                          : 0.0;

  // Phases: intervals between consecutive barrier ends.  Without barriers
  // the whole run is one phase.
  std::sort(barriers.begin(), barriers.end());
  barriers.erase(std::unique(barriers.begin(), barriers.end()),
                 barriers.end());
  if (barriers.empty() || barriers.back() < r.elapsed)
    barriers.push_back(r.elapsed);
  {
    sim::Time prev = 0;
    for (sim::Time b : barriers) {
      r.phases.push_back(PhaseStat{prev, b, 0, 0, 0});
      prev = b;
    }
  }
  auto phase_of = [&](sim::Time end) -> PhaseStat& {
    // First phase whose interval contains the task's completion.
    auto it = std::lower_bound(
        barriers.begin(), barriers.end(), end);
    std::size_t ix = static_cast<std::size_t>(it - barriers.begin());
    if (ix >= r.phases.size()) ix = r.phases.size() - 1;
    return r.phases[ix];
  };
  // Critical path: all time where no task was running is serial glue and
  // stays; each phase's task-active time collapses to its longest task.
  sim::Time task_active_total = 0;
  {
    // Re-sweep for >= 1 active, segmented by phase.
    std::vector<sim::Time> ends;
    for (const Span& t : tasks) {
      PhaseStat& p = phase_of(t.end);
      ++p.tasks;
      p.busy += t.end - t.begin;
      p.longest = std::max(p.longest, t.end - t.begin);
      ends.push_back(t.end);
    }
    std::sort(ends.begin(), ends.end());
    std::size_t bi = 0, ei = 0;
    std::uint64_t active = 0;
    sim::Time prev = 0;
    while (bi < tasks.size() || ei < ends.size()) {
      sim::Time t;
      bool isb;
      if (bi < tasks.size() &&
          (ei >= ends.size() || tasks[bi].begin < ends[ei])) {
        t = tasks[bi].begin;
        isb = true;
      } else {
        t = ends[ei];
        isb = false;
      }
      if (active >= 1) task_active_total += t - prev;
      prev = t;
      if (isb) {
        ++active;
        ++bi;
      } else {
        --active;
        ++ei;
      }
    }
  }
  const sim::Time glue =
      r.elapsed > task_active_total ? r.elapsed - task_active_total : 0;
  sim::Time longest_sum = 0;
  for (const PhaseStat& p : r.phases) longest_sum += p.longest;
  r.critical_path = glue + longest_sum;
  r.serial_elapsed_est = glue + r.task_busy;
  r.speedup_bound = r.critical_path != 0
                        ? static_cast<double>(r.serial_elapsed_est) /
                              static_cast<double>(r.critical_path)
                        : 0.0;

  // Capacity decomposition over the nodes that ran tasks.
  std::vector<bool> is_worker_node(m_.nodes(), false);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (worker_track[i] && tracks_[i].node != sim::kTraceHostNode)
      is_worker_node[tracks_[i].node] = true;
  }
  const sim::MachineStats& st = m_.stats();
  for (sim::NodeId n = 0; n < m_.nodes(); ++n) {
    if (!is_worker_node[n]) continue;
    ++r.worker_nodes;
    const sim::NodeStats& s = st.node[n];
    r.compute_ns += s.compute_ns;
    r.contention_ns += s.queue_ns;
    r.mem_wait_ns += s.stall_ns > s.queue_ns ? s.stall_ns - s.queue_ns : 0;
  }
  r.capacity = static_cast<sim::Time>(r.worker_nodes) * r.elapsed;
  const sim::Time busy = r.compute_ns + r.mem_wait_ns + r.contention_ns;
  r.idle_ns = r.capacity > busy ? r.capacity - busy : 0;
  return r;
}

std::string Tracer::report() const {
  const CriticalPathReport r = critical_path();
  std::string out;
  char buf[256];
  auto line = [&](const char* fmt, auto... a) {
    std::snprintf(buf, sizeof buf, fmt, a...);
    out += buf;
    out += '\n';
  };
  line("%s", "critical-path / Amdahl report (simulated time)");
  line("  elapsed            %s", sim::format_duration(r.elapsed).c_str());
  line("  tasks              %llu on %u workers (%u nodes)",
       static_cast<unsigned long long>(r.tasks), r.workers, r.worker_nodes);
  line("  task busy          %s (avg parallelism %.2f)",
       sim::format_duration(r.task_busy).c_str(), r.avg_parallelism);
  line("  serial fraction    %.4f (%s with <=1 task in flight)",
       r.serial_fraction, sim::format_duration(r.serial_ns).c_str());
  line("  critical path      %s  -> speedup bound %.2fx",
       sim::format_duration(r.critical_path).c_str(), r.speedup_bound);
  if (r.capacity != 0) {
    auto pct = [&](sim::Time t) {
      return 100.0 * static_cast<double>(t) /
             static_cast<double>(r.capacity);
    };
    line("  capacity           %s = %u workers x elapsed",
         sim::format_duration(r.capacity).c_str(), r.worker_nodes);
    line("    compute          %5.1f%%", pct(r.compute_ns));
    line("    remote-mem wait  %5.1f%%", pct(r.mem_wait_ns));
    line("    contention       %5.1f%%", pct(r.contention_ns));
    line("    idle/overhead    %5.1f%%", pct(r.idle_ns));
  }
  line("  phases             %zu", r.phases.size());
  std::size_t shown = 0;
  for (std::size_t i = 0; i < r.phases.size() && shown < 12; ++i) {
    const PhaseStat& p = r.phases[i];
    if (p.tasks == 0) continue;
    ++shown;
    line("    [%3zu] %8s  tasks %5llu  busy %10s  longest %10s", i,
         sim::format_duration(p.end - p.begin).c_str(),
         static_cast<unsigned long long>(p.tasks),
         sim::format_duration(p.busy).c_str(),
         sim::format_duration(p.longest).c_str());
  }
  const auto with_tasks = static_cast<std::size_t>(
      std::count_if(r.phases.begin(), r.phases.end(),
                    [](const PhaseStat& p) { return p.tasks != 0; }));
  if (shown < with_tasks)
    line("    ... (%zu phases with tasks total)", with_tasks);
  return out;
}

std::string Tracer::metrics_json() const {
  using sim::json::Writer;
  const CriticalPathReport r = critical_path();
  sim::MachineStats& st = m_.stats();
  Writer w;
  w.begin_object();
  w.kv("bench", "scope");
  w.kv("elapsed_ns", std::uint64_t{m_.now()});
  w.kv("nodes", std::uint64_t{m_.nodes()});
  w.kv("spans", begin_count_);
  w.kv("instants", instant_count_);
  w.kv("dropped", dropped_);
  w.kv("references", refs_seen_);
  w.key("refs")
      .begin_object()
      .kv("local", st.total_local_refs())
      .kv("remote", st.total_remote_refs())
      .kv("queue_ns", std::uint64_t{st.total_queue_ns()})
      .end_object();
  w.raw(std::string("\"fault\":{") + st.fault_json() + "}");
  w.key("series").begin_object();
  w.kv("bin_ns", std::uint64_t{opt_.bin_ns});
  w.key("node").begin_array();
  const std::size_t bins = max_bin_ + 1;
  for (sim::NodeId n = 0; n < m_.nodes(); ++n) {
    const NodeSeries& s = series_[n];
    if (s.occupancy_ns.empty() && s.local_words.empty() &&
        s.remote_words.empty())
      continue;
    w.begin_object().kv("node", std::uint64_t{n});
    auto arr = [&](const char* k, const auto& v) {
      w.key(k).begin_array();
      for (std::size_t b = 0; b < bins; ++b)
        w.value(std::uint64_t{b < v.size() ? v[b] : 0});
      w.end_array();
    };
    arr("occupancy_ns", s.occupancy_ns);
    arr("queue_ns", s.queue_ns);
    arr("local_words", s.local_words);
    arr("remote_words", s.remote_words);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("critical_path")
      .begin_object()
      .kv("tasks", r.tasks)
      .kv("workers", std::uint64_t{r.workers})
      .kv("task_busy_ns", std::uint64_t{r.task_busy})
      .kv("serial_ns", std::uint64_t{r.serial_ns})
      .kv("serial_fraction", r.serial_fraction)
      .kv("avg_parallelism", r.avg_parallelism)
      .kv("critical_path_ns", std::uint64_t{r.critical_path})
      .kv("speedup_bound", r.speedup_bound)
      .kv("phases", std::uint64_t{r.phases.size()})
      .kv("capacity_ns", std::uint64_t{r.capacity})
      .kv("compute_ns", std::uint64_t{r.compute_ns})
      .kv("mem_wait_ns", std::uint64_t{r.mem_wait_ns})
      .kv("contention_ns", std::uint64_t{r.contention_ns})
      .kv("idle_ns", std::uint64_t{r.idle_ns})
      .end_object();
  w.end_object();
  return w.take();
}

}  // namespace bfly::scope
