// bfly::scope — uncharged tracing, metrics, and critical-path profiling.
//
// A Tracer is a sim::TraceSink: it records the span/instant annotations the
// runtime layers emit (Chrysalis process lifecycle, Uniform System task
// execution, SMP sends, NET stream writes, Bridge requests, rescue
// heartbeats/checkpoints) plus every timed memory reference, all against the
// *simulated* clock.  Like bfly::analyze it is strictly host-side: an
// instrumented run is event-identical to a bare run (the scope tests assert
// this with Instant Replay log equality).
//
// What it gives you:
//   * chrome_trace()   — Chrome/Perfetto trace-event JSON; one "process"
//                        track per simulated node (pid = node + 1, the host
//                        context is the last pid), one "thread" per fiber,
//                        and per-node counter tracks for memory-module
//                        occupancy, module-queue contention, and the
//                        local/remote reference mix.
//   * metrics_json()   — the same aggregates as one bench-style JSON object.
//   * critical_path()  — a critical-path / Amdahl decomposition over the
//                        Uniform System task graph ("us"/"task" spans with
//                        "us"/"wait_idle" barriers): simulated time
//                        attributed to compute vs. remote-memory wait vs.
//                        contention vs. idle, serial fraction, and a
//                        speedup bound; report() renders it as text.
//
// Span categories/names arrive as string literals from the annotation sites
// and are borrowed, not copied (see sim::TraceSink).  The event log is
// time-ordered by construction — the simulation engine's clock never moves
// backwards — which is what makes the exported trace's timestamps monotone.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/machine.hpp"
#include "sim/observe.hpp"
#include "sim/time.hpp"

namespace bfly::scope {

struct ScopeOptions {
  /// Width of the time-series bins (occupancy / contention / locality).
  sim::Time bin_ns = sim::kMillisecond;
  /// Safety cap on recorded span/instant events.  Past the cap new spans
  /// are dropped (balanced: their ends are dropped too) and counted in
  /// dropped_events() — the exporters report the drop, never hide it.
  std::size_t max_events = 1u << 22;
};

/// Per-phase slice of the critical-path report.  A phase is the interval
/// between consecutive Uniform System barriers ("us"/"wait_idle" span ends).
struct PhaseStat {
  sim::Time begin = 0;
  sim::Time end = 0;
  std::uint64_t tasks = 0;
  sim::Time busy = 0;     ///< sum of task durations in the phase
  sim::Time longest = 0;  ///< the phase's critical task
};

struct CriticalPathReport {
  sim::Time elapsed = 0;       ///< machine time at export
  std::uint64_t tasks = 0;     ///< "us"/"task" spans observed
  std::uint32_t workers = 0;   ///< tracks that executed at least one task
  sim::Time task_busy = 0;     ///< sum of all task durations
  /// Time during which at most one task was in flight — the measured
  /// Amdahl serial fraction of the run.
  sim::Time serial_ns = 0;
  double serial_fraction = 0.0;
  double avg_parallelism = 0.0;  ///< task_busy / elapsed
  /// Lower bound on the run under perfect parallelism: all time outside
  /// task execution (the serial glue) plus each phase's longest task.
  sim::Time critical_path = 0;
  /// Estimated one-processor time: serial glue + every task run back to
  /// back.  speedup_bound = serial_elapsed_est / critical_path.
  sim::Time serial_elapsed_est = 0;
  double speedup_bound = 0.0;
  std::vector<PhaseStat> phases;

  // Capacity decomposition over the nodes that ran tasks: where did
  // workers * elapsed processor-nanoseconds go?
  std::uint32_t worker_nodes = 0;
  sim::Time capacity = 0;        ///< worker_nodes * elapsed
  sim::Time compute_ns = 0;      ///< explicit compute charges
  sim::Time mem_wait_ns = 0;     ///< reference latency minus queueing
  sim::Time contention_ns = 0;   ///< queueing behind busy memory modules
  sim::Time idle_ns = 0;         ///< remainder: idle + untracked overheads
};

class Tracer final : public sim::TraceSink {
 public:
  /// Attaches to `m` for the Tracer's lifetime (one sink per machine, like
  /// analyze::Analyzer's observer slot).
  explicit Tracer(sim::Machine& m, ScopeOptions opt = {});
  ~Tracer() override;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- TraceSink -----------------------------------------------------------
  void on_span_begin(sim::Fiber* f, sim::NodeId node, const char* cat,
                     const char* name, std::uint64_t arg) override;
  void on_span_end(sim::Fiber* f, sim::NodeId node) override;
  void on_instant(sim::Fiber* f, sim::NodeId node, const char* cat,
                  const char* name, std::uint64_t arg) override;
  void on_reference(sim::NodeId requester, sim::NodeId home,
                    std::uint32_t words, sim::Time queue_ns, sim::MemOp op,
                    sim::Time at) override;

  // --- Introspection (tests) -----------------------------------------------
  std::uint64_t spans_begun() const { return begin_count_; }
  std::uint64_t spans_completed() const { return end_count_; }
  std::uint64_t instants_recorded() const { return instant_count_; }
  std::uint64_t references_seen() const { return refs_seen_; }
  std::uint64_t dropped_events() const { return dropped_; }
  std::size_t tracks() const { return tracks_.size(); }

  // --- Exports -------------------------------------------------------------
  /// Chrome trace-event JSON (open in Perfetto or chrome://tracing).
  std::string chrome_trace() const;
  /// One bench-style JSON object with counters, series, and the report.
  std::string metrics_json() const;
  CriticalPathReport critical_path() const;
  /// critical_path() rendered as a human-readable text report.
  std::string report() const;

 private:
  struct Event {
    sim::Time at;
    enum Kind : std::uint8_t { kBegin, kEnd, kInstant } kind;
    std::uint32_t track;
    const char* cat;  // borrowed literals; null on kEnd
    const char* name;
    std::uint64_t arg;
  };
  struct Track {
    sim::NodeId node;    // kTraceHostNode for engine/host context
    std::uint32_t tid;   // thread index within the node's trace "process"
    std::string name;
    std::uint32_t open = 0;  // current open-span depth
    std::uint32_t skip = 0;  // begins dropped by the cap, ends owed
  };
  struct NodeSeries {
    std::vector<sim::Time> occupancy_ns;  // module service time per bin
    std::vector<sim::Time> queue_ns;      // queue wait absorbed per bin
    std::vector<std::uint64_t> local_words;
    std::vector<std::uint64_t> remote_words;
  };
  struct Span {
    sim::Time begin, end;
    std::uint32_t track;
    const char* cat;
    const char* name;
  };

  std::uint32_t track_for(sim::Fiber* f, sim::NodeId node);
  std::uint32_t chrome_pid(sim::NodeId node) const;
  /// Reconstruct completed spans from the event log (open spans close at
  /// now()).
  std::vector<Span> completed_spans() const;

  sim::Machine& m_;
  ScopeOptions opt_;
  std::vector<Event> events_;
  std::unordered_map<const void*, std::uint32_t> track_ix_;
  std::vector<Track> tracks_;
  std::vector<std::uint32_t> next_tid_;  // per node (+1 host slot)
  std::vector<NodeSeries> series_;       // per node
  std::size_t max_bin_ = 0;              // highest bin touched, over all nodes

  std::uint64_t begin_count_ = 0;
  std::uint64_t end_count_ = 0;
  std::uint64_t instant_count_ = 0;
  std::uint64_t refs_seen_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace bfly::scope
