// Validation for exported Chrome trace-event JSON.
//
// Used by the scope unit tests and by tools/trace_validate (the ci/check.sh
// gate): the trace must parse as JSON, its timestamps must be monotone
// non-decreasing, and every duration begin ("B") must balance with an end
// ("E") on the same (pid, tid) track.  The parser is a tiny recursive
// descent over the full JSON grammar — self-contained so the gate does not
// depend on any host tooling beyond the C++ toolchain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bfly::scope {

/// A parsed JSON value (enough structure for validation and tests).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* find(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

/// Parse `text` as a JSON document.  Returns false (with a message in
/// `error` when given) on any syntax violation, including trailing junk.
bool json_parse(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

struct TraceCheckStats {
  std::size_t events = 0;
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t instants = 0;
  std::size_t counters = 0;
  std::size_t metadata = 0;
};

/// Validate a Chrome trace-event JSON document: parses, "traceEvents" is an
/// array, timestamps are monotone non-decreasing, B/E events balance per
/// (pid, tid).  Appends human-readable problems to `errors` (first few
/// only) and fills `stats` when given.  Returns true when clean.
bool validate_chrome_trace(std::string_view text,
                           std::vector<std::string>* errors = nullptr,
                           TraceCheckStats* stats = nullptr);

}  // namespace bfly::scope
