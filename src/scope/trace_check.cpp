#include "scope/trace_check.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace bfly::scope {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      if (error) *error = err_;
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error) *error = at("trailing characters after document");
      return false;
    }
    return true;
  }

 private:
  std::string at(const std::string& msg) {
    char buf[64];
    std::snprintf(buf, sizeof buf, " (at byte %zu)", pos_);
    return msg + buf;
  }
  bool fail(const std::string& msg) {
    if (err_.empty()) err_ = at(msg);
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool value(JsonValue* out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return string(&out->str);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->b = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->b = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out->kind = JsonValue::Kind::kNull;
        return true;
      default:
        return number(out);
    }
  }

  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !string(&key))
        return fail("expected object key");
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (++pos_ >= s_.size()) return fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs kept as two
          // replacement sequences; validation only needs well-formedness).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    out->num = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string err_;
};

void add_error(std::vector<std::string>* errors, std::string msg) {
  constexpr std::size_t kMaxErrors = 16;
  if (errors == nullptr) return;
  if (errors->size() < kMaxErrors) errors->push_back(std::move(msg));
}

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text).parse(out, error);
}

bool validate_chrome_trace(std::string_view text,
                           std::vector<std::string>* errors,
                           TraceCheckStats* stats) {
  JsonValue doc;
  std::string perr;
  if (!json_parse(text, &doc, &perr)) {
    add_error(errors, "trace does not parse: " + perr);
    return false;
  }
  if (doc.kind != JsonValue::Kind::kObject) {
    add_error(errors, "trace document is not a JSON object");
    return false;
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    add_error(errors, "missing traceEvents array");
    return false;
  }
  bool ok = true;
  double prev_ts = -1.0;
  // Open-span depth per (pid, tid).
  std::map<std::pair<double, double>, std::size_t> open;
  std::size_t i = 0;
  for (const JsonValue& e : events->arr) {
    ++i;
    if (e.kind != JsonValue::Kind::kObject) {
      add_error(errors, "traceEvents[" + std::to_string(i - 1) +
                            "] is not an object");
      ok = false;
      continue;
    }
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->str.empty()) {
      add_error(errors, "event " + std::to_string(i - 1) + " has no ph");
      ok = false;
      continue;
    }
    if (stats) ++stats->events;
    if (ph->str == "M") {
      if (stats) ++stats->metadata;
      continue;  // metadata carries no timestamp
    }
    const JsonValue* ts = e.find("ts");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
      add_error(errors, "event " + std::to_string(i - 1) + " (ph=" +
                            ph->str + ") has no numeric ts");
      ok = false;
      continue;
    }
    if (ts->num < prev_ts) {
      add_error(errors,
                "timestamps not monotone at event " + std::to_string(i - 1) +
                    ": " + std::to_string(ts->num) + " after " +
                    std::to_string(prev_ts));
      ok = false;
    }
    prev_ts = ts->num;
    if (ph->str == "C") {
      if (stats) ++stats->counters;
      continue;
    }
    if (ph->str == "i" || ph->str == "I") {
      if (stats) ++stats->instants;
      continue;
    }
    if (ph->str != "B" && ph->str != "E") continue;  // tolerate other types
    if (pid == nullptr || pid->kind != JsonValue::Kind::kNumber ||
        tid == nullptr || tid->kind != JsonValue::Kind::kNumber) {
      add_error(errors, "B/E event " + std::to_string(i - 1) +
                            " lacks numeric pid/tid");
      ok = false;
      continue;
    }
    const auto key = std::make_pair(pid->num, tid->num);
    if (ph->str == "B") {
      if (stats) ++stats->begins;
      ++open[key];
    } else {
      if (stats) ++stats->ends;
      auto it = open.find(key);
      if (it == open.end() || it->second == 0) {
        add_error(errors, "unbalanced E at event " + std::to_string(i - 1));
        ok = false;
      } else {
        --it->second;
      }
    }
  }
  for (const auto& [key, depth] : open) {
    if (depth != 0) {
      add_error(errors, std::to_string(depth) +
                            " unclosed B event(s) on pid " +
                            std::to_string(key.first) + " tid " +
                            std::to_string(key.second));
      ok = false;
    }
  }
  return ok;
}

}  // namespace bfly::scope
