#include "scope/scope.hpp"

#include "sim/fiber.hpp"

namespace bfly::scope {

Tracer::Tracer(sim::Machine& m, ScopeOptions opt)
    : m_(m),
      opt_(opt),
      next_tid_(m.nodes() + 1, 1),  // last slot: host context
      series_(m.nodes()) {
  if (opt_.bin_ns == 0) opt_.bin_ns = sim::kMillisecond;
  m_.set_trace_sink(this);
}

Tracer::~Tracer() {
  if (m_.trace_sink() == this) m_.set_trace_sink(nullptr);
}

std::uint32_t Tracer::track_for(sim::Fiber* f, sim::NodeId node) {
  auto it = track_ix_.find(f);
  if (it != track_ix_.end()) {
    // A freed fiber's address can be reused by a later spawn; a node change
    // is the one observable symptom, and means this is a fresh fiber.
    if (tracks_[it->second].node == node) return it->second;
    track_ix_.erase(it);
  }
  Track t;
  t.node = node;
  const std::size_t slot = node == sim::kTraceHostNode ? m_.nodes() : node;
  t.tid = next_tid_[slot]++;
  if (f == nullptr) {
    t.name = "host";
  } else {
    t.name = f->name().empty() ? "fiber" : f->name();
  }
  const auto ix = static_cast<std::uint32_t>(tracks_.size());
  tracks_.push_back(std::move(t));
  track_ix_.emplace(f, ix);
  return ix;
}

void Tracer::on_span_begin(sim::Fiber* f, sim::NodeId node, const char* cat,
                           const char* name, std::uint64_t arg) {
  const std::uint32_t ix = track_for(f, node);
  Track& t = tracks_[ix];
  if (events_.size() >= opt_.max_events) {
    ++t.skip;
    ++dropped_;
    return;
  }
  events_.push_back(Event{m_.now(), Event::kBegin, ix, cat, name, arg});
  ++t.open;
  ++begin_count_;
}

void Tracer::on_span_end(sim::Fiber* f, sim::NodeId node) {
  const std::uint32_t ix = track_for(f, node);
  Track& t = tracks_[ix];
  // Ends match innermost-first, so a pending skip always corresponds to the
  // most recent (dropped) begin on this track.
  if (t.skip > 0) {
    --t.skip;
    return;
  }
  if (t.open == 0) return;  // unmatched end (kill-unwinding): ignore
  events_.push_back(Event{m_.now(), Event::kEnd, ix, nullptr, nullptr, 0});
  --t.open;
  ++end_count_;
}

void Tracer::on_instant(sim::Fiber* f, sim::NodeId node, const char* cat,
                        const char* name, std::uint64_t arg) {
  const std::uint32_t ix = track_for(f, node);
  if (events_.size() >= opt_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{m_.now(), Event::kInstant, ix, cat, name, arg});
  ++instant_count_;
}

void Tracer::on_reference(sim::NodeId requester, sim::NodeId home,
                          std::uint32_t words, sim::Time queue_ns,
                          sim::MemOp /*op*/, sim::Time at) {
  ++refs_seen_;
  const std::size_t bin = at / opt_.bin_ns;
  if (bin > max_bin_) max_bin_ = bin;
  auto grow = [bin](auto& v) -> decltype(v[0])& {
    if (v.size() <= bin) v.resize(bin + 1);
    return v[bin];
  };
  // The home module is busy words * service time; queueing is charged to
  // the module the traffic piled up at.
  NodeSeries& h = series_[home];
  grow(h.occupancy_ns) +=
      static_cast<sim::Time>(words) * m_.config().module_service_ns;
  grow(h.queue_ns) += queue_ns;
  // Locality mix is the requester's view.
  NodeSeries& r = series_[requester];
  if (requester == home) {
    grow(r.local_words) += words;
  } else {
    grow(r.remote_words) += words;
  }
}

std::vector<Tracer::Span> Tracer::completed_spans() const {
  std::vector<Span> out;
  out.reserve(end_count_ + tracks_.size());
  std::vector<std::vector<std::size_t>> stacks(tracks_.size());
  for (const Event& e : events_) {
    switch (e.kind) {
      case Event::kBegin:
        stacks[e.track].push_back(out.size());
        out.push_back(Span{e.at, e.at, e.track, e.cat, e.name});
        break;
      case Event::kEnd: {
        auto& st = stacks[e.track];
        // The log never records an unmatched end, but stay defensive.
        if (!st.empty()) {
          out[st.back()].end = e.at;
          st.pop_back();
        }
        break;
      }
      case Event::kInstant:
        break;
    }
  }
  // Spans still open when the exporter runs close at the current time.
  const sim::Time now = m_.now();
  for (auto& st : stacks)
    for (std::size_t ix : st) out[ix].end = now;
  return out;
}

}  // namespace bfly::scope
