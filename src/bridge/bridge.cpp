#include "bridge/bridge.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace bfly::bridge {

namespace {
constexpr sim::Time kRequestOverhead = 100 * sim::kMicrosecond;
// Per-record comparison work during scans/merges.
constexpr std::uint64_t kScanOpsPerBlock = kBlockSize / 16;
constexpr std::uint32_t kNoRid = 0xffffffffu;
}  // namespace

BridgeFs::BridgeFs(chrys::Kernel& k, std::uint32_t servers, DiskParams disk,
                   StableStore* persist)
    : k_(k), m_(k.machine()), nservers_(servers), disk_params_(disk),
      persist_(persist) {
  done_dq_ = k_.make_dual_queue();
  for (std::uint32_t s = 0; s < nservers_; ++s) {
    auto sv = std::make_unique<Server>(disk_params_);
    sv->node = s % m_.nodes();
    sv->req_dq = k_.make_dual_queue();
    servers_.push_back(std::move(sv));
  }
  if (persist_ != nullptr && !persist_->empty()) {
    if (persist_->servers != nservers_)
      throw sim::SimError(
          "BridgeFs: stable-store image was written with a different server "
          "count; interleaving would scramble every file");
    for (const auto& fi : persist_->files)
      files_.push_back(FileMeta{fi.name, fi.nblocks});
    for (std::uint32_t s = 0; s < nservers_; ++s)
      servers_[s]->store = persist_->stores[s];
  }
  for (std::uint32_t s = 0; s < nservers_; ++s) {
    k_.create_process(servers_[s]->node, [this, s] { server_loop(s); },
                      "bridge-srv" + std::to_string(s));
  }
  servers_alive_ = nservers_;
  // Crash tier: the file system hears broadcast deaths; a silently killed
  // server node is reported by a failure detector through excise_node.
  crash_observer_ =
      m_.on_node_crash([this](sim::NodeId n) { handle_node_death(n); });
}

BridgeFs::~BridgeFs() {
  persist();
  if (crash_observer_ != 0) m_.remove_crash_observer(crash_observer_);
}

void BridgeFs::persist() {
  if (persist_ == nullptr) return;
  persist_->servers = nservers_;
  persist_->files.clear();
  for (const auto& f : files_)
    persist_->files.push_back(StableStore::FileImage{f.name, f.nblocks});
  persist_->stores.assign(nservers_, {});
  for (std::uint32_t s = 0; s < nservers_; ++s)
    persist_->stores[s] = servers_[s]->store;
}

void BridgeFs::excise_node(sim::NodeId n) {
  if (n >= m_.nodes() || m_.node_alive(n)) return;  // never excise the living
  handle_node_death(n);
}

void BridgeFs::fail_abandoned(std::uint32_t s) {
  std::uint32_t rid;
  while (k_.dq_try_dequeue_uncharged(servers_[s]->req_dq, &rid)) {
    Request& rq = reqs_[rid];
    if (rq.abandoned) {
      complete_abandoned(rid);  // nobody is waiting; just reclaim
      continue;
    }
    rq.failed = true;
    rq.replied = true;
    k_.dq_enqueue_uncharged(rq.reply_dq, rid);
  }
}

void BridgeFs::handle_node_death(sim::NodeId n) {
  for (std::uint32_t s = 0; s < nservers_; ++s) {
    Server& sv = *servers_[s];
    if (!sv.alive || sv.node != n) continue;
    sv.alive = false;
    --servers_alive_;
    ++servers_lost_;
    // Every client is owed exactly one reply per request.  Fail-reply the
    // one being served when the node died, then everything still queued.
    if (sv.current_rid != kNoRid) {
      Request& rq = reqs_[sv.current_rid];
      if (rq.abandoned) {
        complete_abandoned(sv.current_rid);
      } else {
        rq.failed = true;
        rq.replied = true;
        k_.dq_enqueue_uncharged(rq.reply_dq, sv.current_rid);
      }
      sv.current_rid = kNoRid;
    }
    fail_abandoned(s);
  }
}

FileId BridgeFs::create(std::string name) {
  files_.push_back(FileMeta{std::move(name), 0});
  for (auto& sv : servers_) sv->store.emplace_back();
  return static_cast<FileId>(files_.size() - 1);
}

bool BridgeFs::lookup(const std::string& name, FileId* out) const {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) {
      *out = static_cast<FileId>(i);
      return true;
    }
  }
  return false;
}

std::uint32_t BridgeFs::blocks(FileId f) const { return files_[f].nblocks; }

std::vector<std::uint8_t>& BridgeFs::block_ref(std::uint32_t s, FileId f,
                                               std::uint32_t local) {
  auto& file_store = servers_[s]->store[f];
  if (file_store.size() <= local) file_store.resize(local + 1);
  if (file_store[local].empty()) file_store[local].assign(kBlockSize, 0);
  return file_store[local];
}

void BridgeFs::charge_disk(Server& sv, std::uint32_t lbn) {
  // A gray-failed node is slow all the way down: its disk controller shares
  // the stretched service window (sim::FaultPlan::slow).
  const sim::Time done =
      sv.disk.access(m_.now(), lbn, m_.slow_factor(sv.node));
  m_.charge(done - m_.now());
}

void BridgeFs::server_loop(std::uint32_t s) {
  Server& sv = *servers_[s];
  while (true) {
    const std::uint32_t rid = k_.dq_dequeue(sv.req_dq);
    // Claim the request host-side before any charge: if this node dies
    // mid-service, the death observer fail-replies exactly this rid.
    sv.current_rid = rid;
    Request& rq = reqs_[rid];
    if (rq.abandoned) {
      // Cancelled while queued: the client is gone, skip the disk entirely
      // (this is what makes a hedge's losing arm cheap).
      complete_abandoned(rid);
      sv.current_rid = kNoRid;
      continue;
    }
    sim::TraceSpan span(m_, "bridge", "serve",
                        static_cast<std::uint64_t>(rq.op));
    bool stop = false;
    switch (rq.op) {
      case Request::kRead: {
        const std::uint32_t local = rq.index / nservers_;
        charge_disk(sv, rq.file * 65536 + local);
        const auto& blk = block_ref(s, rq.file, local);
        // The client may have abandoned us during the disk charge and its
        // buffer may be gone: re-check before every data move.
        if (!rq.abandoned) std::memcpy(rq.rdata, blk.data(), kBlockSize);
        break;
      }
      case Request::kWrite: {
        const std::uint32_t local = rq.index / nservers_;
        charge_disk(sv, rq.file * 65536 + local);
        auto& blk = block_ref(s, rq.file, local);
        // An abandoned write does not commit — the deadline passed, the
        // caller counts it failed, and the replica is repaired by resync.
        if (!rq.abandoned) std::memcpy(blk.data(), rq.wdata, kBlockSize);
        break;
      }
      case Request::kToolCopy: {
        const std::uint32_t n = local_count(rq.file, s);
        for (std::uint32_t l = 0; l < n; ++l) {
          charge_disk(sv, rq.file * 65536 + l);   // read src
          charge_disk(sv, rq.file2 * 65536 + l);  // write dst
          block_ref(s, rq.file2, l) = block_ref(s, rq.file, l);
        }
        rq.result = n;
        break;
      }
      case Request::kToolSearch: {
        const std::uint32_t n = local_count(rq.file, s);
        std::uint64_t count = 0;
        for (std::uint32_t l = 0; l < n; ++l) {
          charge_disk(sv, rq.file * 65536 + l);
          m_.compute(kScanOpsPerBlock);
          for (std::uint8_t b : block_ref(s, rq.file, l))
            if (b == rq.needle) ++count;
        }
        rq.result = count;
        break;
      }
      case Request::kToolCompare: {
        const std::uint32_t n = local_count(rq.file, s);
        std::uint64_t diff = 0;
        for (std::uint32_t l = 0; l < n; ++l) {
          charge_disk(sv, rq.file * 65536 + l);
          charge_disk(sv, rq.file2 * 65536 + l);
          m_.compute(kScanOpsPerBlock);
          if (block_ref(s, rq.file, l) != block_ref(s, rq.file2, l)) ++diff;
        }
        rq.result = diff;
        break;
      }
      case Request::kToolSortLocal: {
        const std::uint32_t n = local_count(rq.file, s);
        std::vector<std::uint32_t> recs;
        recs.reserve(static_cast<std::size_t>(n) * (kBlockSize / 4));
        for (std::uint32_t l = 0; l < n; ++l) {
          charge_disk(sv, rq.file * 65536 + l);
          const auto& blk = block_ref(s, rq.file, l);
          const auto* p = reinterpret_cast<const std::uint32_t*>(blk.data());
          recs.insert(recs.end(), p, p + kBlockSize / 4);
        }
        if (!recs.empty()) {
          m_.compute(recs.size() * 4);  // ~n log n record moves
          std::sort(recs.begin(), recs.end());
        }
        for (std::uint32_t l = 0; l < n; ++l) {
          charge_disk(sv, rq.file * 65536 + l);
          auto& blk = block_ref(s, rq.file, l);
          std::memcpy(blk.data(), recs.data() + l * (kBlockSize / 4),
                      kBlockSize);
        }
        rq.result = n;
        break;
      }
      case Request::kStop:
        stop = true;
        break;
    }
    if (rq.abandoned) {
      complete_abandoned(rid);
      sv.current_rid = kNoRid;
      if (stop) break;
      continue;
    }
    k_.dq_enqueue(rq.reply_dq, rid);
    // Mark replied only after the charged enqueue completes: if the node
    // dies mid-enqueue the token was not delivered, and the death observer
    // must still fail-reply this rid.
    rq.replied = true;
    sv.current_rid = kNoRid;
    if (stop) break;
  }
  sv.alive = false;
  --servers_alive_;
}

std::uint32_t BridgeFs::local_count(FileId f, std::uint32_t s) const {
  const std::uint32_t n = files_[f].nblocks;
  // Blocks s, s+D, s+2D, ... below n.
  return n > s ? (n - s - 1) / nservers_ + 1 : 0;
}

void BridgeFs::write_block(FileId f, std::uint32_t index, const void* data) {
  (void)write_block_for(f, index, data, 0);
}

void BridgeFs::read_block(FileId f, std::uint32_t index, void* out) {
  (void)read_block_for(f, index, out, 0);
}

bool BridgeFs::write_block_for(FileId f, std::uint32_t index, const void* data,
                               sim::Time budget) {
  const std::uint32_t s = index % nservers_;
  if (!servers_[s]->alive)
    throw chrys::ThrowSignal{chrys::kThrowNodeDead, servers_[s]->node};
  files_[f].nblocks = std::max(files_[f].nblocks, index + 1);
  sim::TraceSpan span(m_, "bridge", "write_block", index);
  m_.charge(kRequestOverhead);
  try {
    // The block travels to the server's node across the switch.
    m_.access_words(sim::PhysAddr{servers_[s]->node, 0}, kBlockSize / 4 / 8);
  } catch (const sim::NodeDeadError&) {
    // Touching the corpse revealed a silent death; keep the documented
    // contract (dead stripe throws the Chrysalis signal, not a raw
    // machine error).
    throw chrys::ThrowSignal{chrys::kThrowNodeDead, servers_[s]->node};
  } catch (const sim::NetUnreachableError&) {
    // The server is cut off, not dead: same signal discipline, distinct
    // code, so callers can retry after the heal instead of repairing.
    throw chrys::ThrowSignal{chrys::kThrowNetUnreachable, servers_[s]->node};
  }
  const chrys::Oid reply = k_.make_dual_queue();
  Request rq;
  rq.op = Request::kWrite;
  rq.file = f;
  rq.index = index;
  rq.wdata = data;
  rq.reply_dq = reply;
  const std::uint32_t rid = put_request(std::move(rq));
  k_.dq_enqueue(servers_[s]->req_dq, rid);
  // The server may have died while we shipped the request, after its death
  // observer drained the queue; fail-reply our own stranded rid.
  if (!servers_[s]->alive) fail_abandoned(s);
  std::uint32_t tok;
  if (budget == 0) {
    (void)k_.dq_dequeue(reply);
  } else if (!k_.dq_dequeue_for(reply, budget, &tok)) {
    if (!abandon_request(rid)) {
      // Still in flight: the bridge owns the slot now, we walk away.
      release_reply_queue(reply);
      return false;
    }
    (void)k_.dq_try_dequeue_uncharged(reply, &tok);  // reply raced us in
  }
  const bool failed = reqs_[rid].failed;
  release_request(rid);
  k_.delete_object(reply);
  if (failed)
    throw chrys::ThrowSignal{chrys::kThrowNodeDead, servers_[s]->node};
  return true;
}

bool BridgeFs::read_block_for(FileId f, std::uint32_t index, void* out,
                              sim::Time budget) {
  const std::uint32_t s = index % nservers_;
  if (!servers_[s]->alive)
    throw chrys::ThrowSignal{chrys::kThrowNodeDead, servers_[s]->node};
  sim::TraceSpan span(m_, "bridge", "read_block", index);
  m_.charge(kRequestOverhead);
  const chrys::Oid reply = k_.make_dual_queue();
  Request rq;
  rq.op = Request::kRead;
  rq.file = f;
  rq.index = index;
  rq.rdata = out;
  rq.reply_dq = reply;
  const std::uint32_t rid = put_request(std::move(rq));
  k_.dq_enqueue(servers_[s]->req_dq, rid);
  if (!servers_[s]->alive) fail_abandoned(s);
  std::uint32_t tok;
  if (budget == 0) {
    (void)k_.dq_dequeue(reply);
  } else if (!k_.dq_dequeue_for(reply, budget, &tok)) {
    if (!abandon_request(rid)) {
      release_reply_queue(reply);
      return false;
    }
    (void)k_.dq_try_dequeue_uncharged(reply, &tok);
  }
  const bool failed = reqs_[rid].failed;
  release_request(rid);
  if (failed) {
    k_.delete_object(reply);
    throw chrys::ThrowSignal{chrys::kThrowNodeDead, servers_[s]->node};
  }
  try {
    // The block travels back across the switch.
    m_.access_words(sim::PhysAddr{servers_[s]->node, 0}, kBlockSize / 4 / 8);
  } catch (const sim::NodeDeadError&) {
    // The server died between its reply and our data pull: the block is
    // gone with the node.  Same documented signal as a dead-at-entry
    // stripe.
    k_.delete_object(reply);
    throw chrys::ThrowSignal{chrys::kThrowNodeDead, servers_[s]->node};
  } catch (const sim::NetUnreachableError&) {
    // A partition opened between the reply and our data pull: the block
    // survives on the far side, but this read cannot complete.
    k_.delete_object(reply);
    throw chrys::ThrowSignal{chrys::kThrowNetUnreachable, servers_[s]->node};
  }
  k_.delete_object(reply);
  return true;
}

std::uint32_t BridgeFs::put_failed(Request rq, chrys::Oid reply_dq,
                                   bool unreachable) {
  rq.failed = true;
  rq.unreachable = unreachable;
  rq.replied = true;
  rq.reply_dq = reply_dq;
  const std::uint32_t rid = put_request(std::move(rq));
  k_.dq_enqueue_uncharged(reply_dq, rid);
  return rid;
}

std::uint32_t BridgeFs::submit_read(FileId f, std::uint32_t index, void* out,
                                    chrys::Oid reply_dq) {
  const std::uint32_t s = index % nservers_;
  sim::TraceSpan span(m_, "bridge", "submit_read", index);
  Request rq;
  rq.op = Request::kRead;
  rq.file = f;
  rq.index = index;
  rq.rdata = out;
  rq.reply_dq = reply_dq;
  m_.charge(kRequestOverhead);
  if (!servers_[s]->alive) return put_failed(std::move(rq), reply_dq);
  const std::uint32_t rid = put_request(std::move(rq));
  k_.dq_enqueue(servers_[s]->req_dq, rid);
  if (!servers_[s]->alive) fail_abandoned(s);
  return rid;
}

std::uint32_t BridgeFs::submit_write(FileId f, std::uint32_t index,
                                     const void* data, chrys::Oid reply_dq) {
  const std::uint32_t s = index % nservers_;
  sim::TraceSpan span(m_, "bridge", "submit_write", index);
  Request rq;
  rq.op = Request::kWrite;
  rq.file = f;
  rq.index = index;
  rq.wdata = data;
  rq.reply_dq = reply_dq;
  m_.charge(kRequestOverhead);
  if (!servers_[s]->alive) return put_failed(std::move(rq), reply_dq);
  files_[f].nblocks = std::max(files_[f].nblocks, index + 1);
  try {
    // The block travels to the server's node across the switch.
    m_.access_words(sim::PhysAddr{servers_[s]->node, 0}, kBlockSize / 4 / 8);
  } catch (const sim::NodeDeadError&) {
    // Touching the corpse revealed a silent death before any detector did.
    return put_failed(std::move(rq), reply_dq);
  } catch (const sim::NetUnreachableError&) {
    // No path to the server (partition or dead switch hardware): fail the
    // request but flag it unreachable — the replica is stale, not lost.
    return put_failed(std::move(rq), reply_dq, /*unreachable=*/true);
  }
  const std::uint32_t rid = put_request(std::move(rq));
  k_.dq_enqueue(servers_[s]->req_dq, rid);
  if (!servers_[s]->alive) fail_abandoned(s);
  return rid;
}

bool BridgeFs::abandon_request(std::uint32_t rid) {
  Request& rq = reqs_[rid];
  if (rq.replied) return true;  // too late; the token is already out
  rq.abandoned = true;
  ++abandoned_on_dq_[rq.reply_dq];
  return false;
}

void BridgeFs::release_reply_queue(chrys::Oid dq) {
  if (abandoned_on_dq_.count(dq) > 0) {
    dq_deferred_.insert(dq);  // last abandoned completion deletes it
    return;
  }
  k_.delete_object(dq);
}

void BridgeFs::complete_abandoned(std::uint32_t rid) {
  const chrys::Oid dq = reqs_[rid].reply_dq;
  release_request(rid);
  auto it = abandoned_on_dq_.find(dq);
  if (it == abandoned_on_dq_.end()) return;
  if (--it->second == 0) {
    abandoned_on_dq_.erase(it);
    if (dq_deferred_.erase(dq) > 0) k_.delete_object(dq);
  }
}

std::size_t BridgeFs::queue_depth(std::uint32_t s) const {
  return k_.dq_depth(servers_[s]->req_dq) +
         (servers_[s]->current_rid != kNoRid ? 1 : 0);
}

std::uint32_t BridgeFs::put_request(Request rq) {
  if (!req_free_.empty()) {
    const std::uint32_t rid = req_free_.back();
    req_free_.pop_back();
    reqs_[rid] = std::move(rq);
    return rid;
  }
  reqs_.push_back(std::move(rq));
  return static_cast<std::uint32_t>(reqs_.size() - 1);
}

void BridgeFs::release_request(std::uint32_t rid) { req_free_.push_back(rid); }

std::uint64_t BridgeFs::ship_to_all(Request::Op op, FileId f, FileId f2,
                                    std::uint8_t needle) {
  sim::TraceSpan span(m_, "bridge", "tool", static_cast<std::uint64_t>(op));
  const chrys::Oid reply = k_.make_dual_queue();
  std::uint32_t shipped = 0;
  for (std::uint32_t s = 0; s < nservers_; ++s) {
    if (!servers_[s]->alive) continue;  // degraded: surviving stripes only
    m_.charge(kRequestOverhead);
    if (!servers_[s]->alive) continue;  // died during the charge
    Request rq;
    rq.op = op;
    rq.file = f;
    rq.file2 = f2;
    rq.needle = needle;
    rq.reply_dq = reply;
    const std::uint32_t rid = put_request(std::move(rq));
    k_.dq_enqueue(servers_[s]->req_dq, rid);
    ++shipped;
    if (!servers_[s]->alive) fail_abandoned(s);
  }
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < shipped; ++i) {
    const std::uint32_t rid = k_.dq_dequeue(reply);
    if (reqs_[rid].failed)
      ++tool_shards_failed_;
    else
      total += reqs_[rid].result;
    release_request(rid);
  }
  k_.delete_object(reply);
  return total;
}

void BridgeFs::tool_copy(FileId src, FileId dst) {
  files_[dst].nblocks = files_[src].nblocks;
  (void)ship_to_all(Request::kToolCopy, src, dst, 0);
}

std::uint64_t BridgeFs::tool_search(FileId f, std::uint8_t needle) {
  return ship_to_all(Request::kToolSearch, f, 0, needle);
}

std::uint32_t BridgeFs::tool_compare(FileId a, FileId b) {
  return static_cast<std::uint32_t>(
      ship_to_all(Request::kToolCompare, a, b, 0));
}

void BridgeFs::tool_sort(FileId src, FileId dst) {
  // Phase 1 (parallel): each server sorts its local blocks into a run.
  (void)ship_to_all(Request::kToolSortLocal, src, 0, 0);
  // Phase 2 (serial tail): the client merges the D runs.
  const std::uint32_t n = files_[src].nblocks;
  constexpr std::uint32_t kRec = kBlockSize / 4;
  std::vector<std::vector<std::uint32_t>> runs(nservers_);
  std::vector<std::uint8_t> buf(kBlockSize);
  for (std::uint32_t b = 0; b < n; ++b) {
    read_block(src, b, buf.data());
    const auto* p = reinterpret_cast<const std::uint32_t*>(buf.data());
    auto& run = runs[b % nservers_];
    run.insert(run.end(), p, p + kRec);
  }
  std::vector<std::size_t> cur(nservers_, 0);
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(n) * kRec);
  m_.compute(static_cast<std::uint64_t>(n) * kRec / 2);  // merge compares
  while (out.size() < static_cast<std::size_t>(n) * kRec) {
    std::uint32_t best = 0;
    bool found = false;
    std::uint32_t who = 0;
    for (std::uint32_t s = 0; s < nservers_; ++s) {
      if (cur[s] < runs[s].size() &&
          (!found || runs[s][cur[s]] < best)) {
        best = runs[s][cur[s]];
        who = s;
        found = true;
      }
    }
    out.push_back(best);
    ++cur[who];
  }
  files_[dst].nblocks = n;
  for (std::uint32_t b = 0; b < n; ++b)
    write_block(dst, b, out.data() + static_cast<std::size_t>(b) * kRec);
}

void BridgeFs::shutdown() {
  (void)ship_to_all(Request::kStop, 0, 0, 0);
}

std::uint64_t BridgeFs::disk_ops() const {
  std::uint64_t t = 0;
  for (const auto& sv : servers_) t += sv->disk.ops();
  return t;
}

}  // namespace bfly::bridge
