// Bridge — a high-performance parallel file system (Dibble, Scott & Ellis,
// ICDCS 1988; Section 3.4 of the paper).
//
// "Any performance limit on the path between secondary storage and
// application program must be considered an I/O bottleneck.  Faster storage
// devices cannot solve the I/O bottleneck problem for large multiprocessor
// systems if data passes through a file system on a single processor."
//
// Bridge distributes each file across multiple storage devices and
// processors using *interleaved files*: consecutive logical blocks live on
// consecutive servers (block k on server k mod D).  Naive programs use the
// ordinary block interface and still benefit from striping; sophisticated
// programs use the tool interface, which ships operations to the processors
// managing the data so each server works on its local blocks — the source
// of Bridge's near-linear speedup in the number of disks for copying,
// searching, comparing, and (with a serial merge tail) sorting.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chrysalis/kernel.hpp"

namespace bfly::bridge {

inline constexpr std::size_t kBlockSize = 4096;

/// A simulated 1988-class disk: one request at a time, seek + transfer,
/// sequential accesses skip the seek.
struct DiskParams {
  sim::Time seek_ns = 22 * sim::kMillisecond;
  sim::Time block_transfer_ns = 4 * sim::kMillisecond;  // ~1 MB/s
};

class Disk {
 public:
  explicit Disk(DiskParams p) : p_(p) {}

  /// Completion time of an access to logical block `lbn` issued at `now`.
  /// `stretch` models a gray-failed controller (sim::FaultPlan slow-node
  /// windows): the whole access takes that many times longer.  Exactly 1.0
  /// keeps the integer-only arithmetic of a healthy run.
  sim::Time access(sim::Time now, std::uint32_t lbn, double stretch = 1.0) {
    sim::Time start = std::max(now, busy_until_);
    sim::Time cost = p_.block_transfer_ns;
    if (!(has_pos_ && lbn == last_ + 1)) cost += p_.seek_ns;
    if (stretch != 1.0)
      cost = static_cast<sim::Time>(static_cast<double>(cost) * stretch);
    busy_until_ = start + cost;
    last_ = lbn;
    has_pos_ = true;
    ++ops_;
    return busy_until_;
  }

  std::uint64_t ops() const { return ops_; }

 private:
  DiskParams p_;
  sim::Time busy_until_ = 0;
  std::uint32_t last_ = 0;
  bool has_pos_ = false;
  std::uint64_t ops_ = 0;
};

using FileId = std::uint32_t;

/// Host-side image of the disks' contents: stable storage that outlives one
/// Machine incarnation.  A BridgeFs constructed with a StableStore loads the
/// blocks written by a previous run and flushes its own on destruction (or
/// persist()), which is what makes checkpoint/restart possible — the
/// simulated machine reboots, the platters do not.
struct StableStore {
  struct FileImage {
    std::string name;
    std::uint32_t nblocks = 0;
  };
  std::uint32_t servers = 0;  ///< geometry the image was written with
  std::vector<FileImage> files;
  /// [server][file][local block] block bytes (empty = never written).
  std::vector<std::vector<std::vector<std::vector<std::uint8_t>>>> stores;

  bool empty() const { return files.empty(); }
};

class BridgeFs {
 public:
  /// Create `servers` Bridge server processes on nodes [0, servers), each
  /// with one disk.  Must be called from a Chrysalis process.  When
  /// `persist` is given, a non-empty image is loaded (its server count must
  /// match) and the store is flushed back on destruction.
  BridgeFs(chrys::Kernel& k, std::uint32_t servers, DiskParams disk = {},
           StableStore* persist = nullptr);
  ~BridgeFs();

  BridgeFs(const BridgeFs&) = delete;
  BridgeFs& operator=(const BridgeFs&) = delete;

  std::uint32_t servers() const { return nservers_; }

  // --- Standard (naive) interface: one block at a time through the client --
  FileId create(std::string name);
  /// Find a file by name (e.g. one loaded from a StableStore image).
  bool lookup(const std::string& name, FileId* out) const;
  /// Logical length in blocks.
  std::uint32_t blocks(FileId f) const;
  /// Block ops throw chrys::ThrowSignal{kThrowNodeDead} when the stripe's
  /// server node has died: that slice of every interleaved file is
  /// unreadable, and the caller is told so explicitly rather than hanging.
  void write_block(FileId f, std::uint32_t index, const void* data);
  void read_block(FileId f, std::uint32_t index, void* out);

  // --- Deadline interface -------------------------------------------------
  // Same operations with a per-request time budget: when the reply has not
  // arrived within `budget` the call abandons the request and returns false
  // instead of blocking forever (today a lost reply could only be rescued
  // by a node-death suspicion).  budget 0 means wait forever — identical
  // charge sequence to the plain calls.  A dead-stripe failure still throws
  // chrys::ThrowSignal{kThrowNodeDead}, exactly like the plain calls.
  bool write_block_for(FileId f, std::uint32_t index, const void* data,
                       sim::Time budget);
  bool read_block_for(FileId f, std::uint32_t index, void* out,
                      sim::Time budget);

  // --- Asynchronous interface (the serve layer's building block) ----------
  // submit_* ships the request and returns immediately; the request id is
  // enqueued on `reply_dq` when served (or fail-replied).  The caller owns
  // `reply_dq` and the rid slot: after dequeuing the token, inspect
  // request_failed(rid) and call finish_request(rid).
  //
  // A caller that stops waiting calls abandon_request(rid).  If the reply
  // already arrived it returns true and the caller consumes the token as
  // usual.  Otherwise the bridge takes ownership of the slot: the server
  // skips the data transfer when it eventually reaches the request (its
  // buffers may be gone) and the slot is reclaimed internally.  When the
  // caller is done with a reply queue it calls release_reply_queue instead
  // of deleting the Oid directly, so a queue with abandoned requests still
  // in flight survives until the last one drains.

  /// Submit a block read.  No data-return transfer is charged here; the
  /// caller charges it after a successful reply (see read_block_for).
  std::uint32_t submit_read(FileId f, std::uint32_t index, void* out,
                            chrys::Oid reply_dq);
  /// Submit a block write (the data ships with the request, charged here).
  std::uint32_t submit_write(FileId f, std::uint32_t index, const void* data,
                             chrys::Oid reply_dq);
  bool request_failed(std::uint32_t rid) const { return reqs_[rid].failed; }
  /// True when a failed request failed for lack of a network path (the
  /// server may be alive on the far side of a partition) rather than a
  /// death.  Callers that repair on failure must not treat these replicas
  /// as lost — their data comes back when the cut heals.
  bool request_unreachable(std::uint32_t rid) const {
    return reqs_[rid].unreachable;
  }
  void finish_request(std::uint32_t rid) { release_request(rid); }
  bool abandon_request(std::uint32_t rid);
  void release_reply_queue(chrys::Oid dq);

  /// Admission-control visibility: requests queued at server `s` plus the
  /// one being served, host-side and uncharged.
  std::size_t queue_depth(std::uint32_t s) const;
  bool server_alive(std::uint32_t s) const { return servers_[s]->alive; }
  /// Server that stripe `index` of every interleaved file lives on.
  std::uint32_t server_of(std::uint32_t index) const {
    return index % nservers_;
  }
  sim::NodeId server_node(std::uint32_t s) const { return servers_[s]->node; }

  // --- Tool interface: the operation runs on every server in parallel -----
  /// Copy src into dst (same interleaving: entirely server-local).
  void tool_copy(FileId src, FileId dst);
  /// Count occurrences of `needle` bytes.
  std::uint64_t tool_search(FileId f, std::uint8_t needle);
  /// Byte-compare two files of equal length; returns number of differing
  /// blocks.
  std::uint32_t tool_compare(FileId a, FileId b);
  /// Sort the file viewed as uint32 records: parallel local sort into runs,
  /// then a serial merge through the client (the paper's sub-linear tail).
  void tool_sort(FileId src, FileId dst);

  /// Stop the server processes (call before the creator exits).
  void shutdown();

  /// Flush the block store to the StableStore now (host-side, untimed —
  /// blocks were durable the moment each write was serviced; this just
  /// copies the image out so the next incarnation can load it).  The
  /// destructor does this too; explicit calls make restart harnesses clear.
  void persist();

  /// Excise a node a failure detector declared dead: fail-reply the
  /// in-flight and queued requests of every server homed there.  Loud
  /// kills arrive automatically via the crash broadcast; silent kills need
  /// this call.  No-op for a live or already-excised node.
  void excise_node(sim::NodeId n);

  std::uint64_t disk_ops() const;

  // --- Degraded operation ------------------------------------------------
  // Tool operations on a degraded file system run on the surviving servers
  // only: results cover the reachable stripes and tool_shards_failed()
  // reports how many slices went unprocessed.

  std::uint32_t servers_alive() const { return servers_alive_; }
  std::uint32_t servers_lost() const { return servers_lost_; }
  /// Per-server tool requests that failed (server died before replying).
  std::uint64_t tool_shards_failed() const { return tool_shards_failed_; }

 private:
  struct Request {
    enum Op {
      kRead,
      kWrite,
      kToolCopy,
      kToolSearch,
      kToolCompare,
      kToolSortLocal,
      kStop
    } op = kRead;
    FileId file = 0;
    FileId file2 = 0;
    std::uint32_t index = 0;      // block ops
    std::uint8_t needle = 0;      // search
    const void* wdata = nullptr;  // write
    void* rdata = nullptr;        // read
    std::uint64_t result = 0;     // tool results
    bool failed = false;          // server died before serving it
    bool unreachable = false;     // failed because no path, not death
    bool abandoned = false;       // client stopped waiting; skip data moves
    bool replied = false;         // reply token enqueued (or fail-replied)
    chrys::Oid reply_dq = chrys::kNoObject;
  };
  struct FileMeta {
    std::string name;
    std::uint32_t nblocks = 0;
  };
  struct Server {
    sim::NodeId node = 0;
    Disk disk;
    chrys::Oid req_dq = chrys::kNoObject;
    // Per (file, local index) block contents; block k of file f lives on
    // server k % D at local index k / D.
    std::vector<std::vector<std::vector<std::uint8_t>>> store;  // [file][local]
    std::uint32_t next_lbn = 0;  // disk block allocation cursor
    bool alive = true;
    std::uint32_t current_rid = 0xffffffffu;  // request being served, if any

    explicit Server(DiskParams p) : disk(p) {}
  };

  void server_loop(std::uint32_t s);
  void handle_node_death(sim::NodeId n);
  /// Fail-reply every request stranded in a dead server's queue.
  void fail_abandoned(std::uint32_t s);
  std::uint64_t ship_to_all(Request::Op op, FileId f, FileId f2,
                            std::uint8_t needle);
  std::vector<std::uint8_t>& block_ref(std::uint32_t s, FileId f,
                                       std::uint32_t local);
  void charge_disk(Server& sv, std::uint32_t lbn);
  std::uint32_t local_count(FileId f, std::uint32_t s) const;
  std::uint32_t put_request(Request rq);
  void release_request(std::uint32_t rid);
  /// Reclaim an abandoned request the moment its server-side story ends;
  /// deletes the reply queue too once the caller released it and no other
  /// abandoned request still points there.
  void complete_abandoned(std::uint32_t rid);
  /// Immediately fail-reply a request whose stripe server is dead, without
  /// shipping anything (uncharged token so the client loop stays uniform).
  std::uint32_t put_failed(Request rq, chrys::Oid reply_dq,
                           bool unreachable = false);

  chrys::Kernel& k_;
  sim::Machine& m_;
  std::uint32_t nservers_ = 0;
  DiskParams disk_params_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<FileMeta> files_;
  std::deque<Request> reqs_;            // host-side request slots (stable refs)
  std::vector<std::uint32_t> req_free_;
  // Abandoned-request bookkeeping: in-flight abandoned rids per reply
  // queue, and queues whose deletion waits on that count reaching zero.
  std::unordered_map<chrys::Oid, std::uint32_t> abandoned_on_dq_;
  std::unordered_set<chrys::Oid> dq_deferred_;
  chrys::Oid done_dq_ = chrys::kNoObject;
  std::uint32_t servers_alive_ = 0;
  std::uint32_t servers_lost_ = 0;
  std::uint64_t tool_shards_failed_ = 0;
  std::uint64_t crash_observer_ = 0;
  StableStore* persist_ = nullptr;
};

}  // namespace bfly::bridge
