// Elmwood — an object-oriented multiprocessor operating system
// (Mellor-Crummey, LeBlanc, Crowl, Gafter & Dibble, SP&E; Section 3.4).
//
// Elmwood was "a fully-functional RPC-based multiprocessor operating
// system constructed as a class project in only a semester and a half".
// Its model: everything is an object; an object exports entry procedures;
// computation happens by invoking an entry on an object, which runs as a
// new lightweight invocation inside the object's monitor — entries on the
// same object are mutually exclusive unless declared reentrant, while
// invocations on different objects run in parallel.  Capabilities name
// objects; holding one is the right to invoke.
//
// This library rebuilds that model on Chrysalis: objects are placed on
// nodes, each with a server process and an invocation queue; cross-object
// calls are synchronous RPC with the caller's invocation suspended.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "chrysalis/kernel.hpp"

namespace bfly::elmwood {

class Elmwood;
class Invocation;

/// A capability: the unforgeable right to invoke entries on one object.
struct Capability {
  std::uint64_t bits = 0;
  bool valid() const { return bits != 0; }
  bool operator==(const Capability&) const = default;
};

/// Entry procedure: receives the invocation context (for nested calls) and
/// a 64-bit argument; returns a 64-bit result.
using Entry = std::function<std::uint64_t(Invocation&, std::uint64_t)>;

/// Context handed to a running entry; lets it invoke other objects.
class Invocation {
 public:
  /// Synchronous nested invocation on another object (by capability).
  std::uint64_t invoke(Capability target, const std::string& entry,
                       std::uint64_t arg);
  sim::NodeId node() const { return node_; }

 private:
  friend class Elmwood;
  Invocation(Elmwood& os, sim::NodeId node) : os_(os), node_(node) {}
  Elmwood& os_;
  sim::NodeId node_;
};

class Elmwood {
 public:
  explicit Elmwood(chrys::Kernel& k);
  ~Elmwood();

  /// Create an object on `node`; returns its capability.
  Capability create_object(sim::NodeId node, std::string name);
  /// Add an entry procedure.  Entries on one object are mutually exclusive
  /// (the object is a monitor) unless `reentrant`.
  void add_entry(Capability obj, std::string entry, Entry fn,
                 bool reentrant = false);

  /// Invoke from outside any object (e.g. from a plain Chrysalis process).
  std::uint64_t invoke(Capability obj, const std::string& entry,
                       std::uint64_t arg);

  /// Stop all object servers (drains queued invocations first).
  void shutdown();

  std::uint64_t invocations() const { return invocations_; }

 private:
  friend class Invocation;
  struct EntryRec {
    Entry fn;
    bool reentrant = false;
  };
  struct Object {
    std::string name;
    sim::NodeId node = 0;
    Capability cap;
    std::unordered_map<std::string, EntryRec> entries;
    chrys::Oid queue = chrys::kNoObject;  // invocation requests
  };
  struct Call {
    std::uint32_t obj = 0;
    std::string entry;
    std::uint64_t arg = 0;
    std::uint64_t result = 0;
    bool failed = false;
    chrys::Oid done = chrys::kNoObject;  // event to post on completion
    chrys::Oid waiter = chrys::kNoObject;
  };

  std::uint64_t do_invoke(Capability obj, const std::string& entry,
                          std::uint64_t arg);
  void server_loop(std::uint32_t index);
  Object& object_of(Capability cap);

  chrys::Kernel& k_;
  sim::Machine& m_;
  std::vector<std::unique_ptr<Object>> objects_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_cap_;
  std::deque<Call> calls_;
  std::vector<std::uint32_t> call_free_;
  std::uint64_t next_cap_ = 0xe100000000000001ull;
  std::uint64_t invocations_ = 0;
  bool shut_ = false;
};

}  // namespace bfly::elmwood
