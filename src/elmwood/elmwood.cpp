#include "elmwood/elmwood.hpp"

namespace bfly::elmwood {

namespace {
constexpr std::uint32_t kStop = 0xffffffffu;
constexpr sim::Time kInvokeOverhead = 150 * sim::kMicrosecond;
constexpr sim::Time kDispatch = 100 * sim::kMicrosecond;
}  // namespace

Elmwood::Elmwood(chrys::Kernel& k) : k_(k), m_(k.machine()) {}

Elmwood::~Elmwood() = default;

Capability Elmwood::create_object(sim::NodeId node, std::string name) {
  auto obj = std::make_unique<Object>();
  obj->name = std::move(name);
  obj->node = node;
  obj->cap = Capability{next_cap_++};
  obj->queue = k_.make_dual_queue();
  if (k_.on_process()) k_.give_to_system(obj->queue);
  const auto index = static_cast<std::uint32_t>(objects_.size());
  by_cap_[obj->cap.bits] = index;
  Object* op = obj.get();
  objects_.push_back(std::move(obj));
  k_.create_process(node, [this, index] { server_loop(index); },
                    "elm-" + op->name);
  return op->cap;
}

Elmwood::Object& Elmwood::object_of(Capability cap) {
  auto it = by_cap_.find(cap.bits);
  if (it == by_cap_.end())
    throw chrys::ThrowSignal{chrys::kThrowBadObject,
                             static_cast<std::uint32_t>(cap.bits)};
  return *objects_[it->second];
}

void Elmwood::add_entry(Capability obj, std::string entry, Entry fn,
                        bool reentrant) {
  object_of(obj).entries[std::move(entry)] = EntryRec{std::move(fn), reentrant};
}

std::uint64_t Elmwood::invoke(Capability obj, const std::string& entry,
                              std::uint64_t arg) {
  return do_invoke(obj, entry, arg);
}

std::uint64_t Invocation::invoke(Capability target, const std::string& entry,
                                 std::uint64_t arg) {
  return os_.do_invoke(target, entry, arg);
}

std::uint64_t Elmwood::do_invoke(Capability cap, const std::string& entry,
                                 std::uint64_t arg) {
  Object& obj = object_of(cap);
  m_.charge(kInvokeOverhead);
  Call c;
  c.obj = by_cap_[cap.bits];
  c.entry = entry;
  c.arg = arg;
  c.waiter = k_.self().oid();
  c.done = k_.make_event();
  std::uint32_t id;
  if (!call_free_.empty()) {
    id = call_free_.back();
    call_free_.pop_back();
    calls_[id] = std::move(c);
  } else {
    calls_.push_back(std::move(c));
    id = static_cast<std::uint32_t>(calls_.size() - 1);
  }
  k_.dq_enqueue(obj.queue, id);
  (void)k_.event_wait(calls_[id].done);
  const bool failed = calls_[id].failed;
  const std::uint64_t result = calls_[id].result;
  k_.delete_object(calls_[id].done);
  call_free_.push_back(id);
  ++invocations_;
  if (failed)
    throw chrys::ThrowSignal{chrys::kThrowBadObject, id};
  return result;
}

void Elmwood::server_loop(std::uint32_t index) {
  Object& obj = *objects_[index];
  while (true) {
    const std::uint32_t id = k_.dq_dequeue(obj.queue);
    if (id == kStop) break;
    Call& c = calls_[id];
    m_.charge(kDispatch);
    auto it = obj.entries.find(c.entry);
    if (it == obj.entries.end()) {
      c.failed = true;
      k_.event_post(c.done, id);
      continue;
    }
    if (it->second.reentrant) {
      // A reentrant entry gets its own process: the monitor is not held.
      EntryRec* er = &it->second;  // stable: entries are never erased
      k_.create_process(obj.node, [this, &obj, id, er] {
        Call& cc = calls_[id];
        Invocation inv(*this, obj.node);
        cc.result = er->fn(inv, cc.arg);
        k_.event_post(cc.done, id);
      });
    } else {
      // Monitor semantics: the entry runs in the server itself, so entries
      // on this object are mutually exclusive (and a nested invocation
      // holds the monitor — cycles deadlock, as on the real system).
      Invocation inv(*this, obj.node);
      c.result = it->second.fn(inv, c.arg);
      k_.event_post(c.done, id);
    }
  }
}

void Elmwood::shutdown() {
  if (shut_) return;
  shut_ = true;
  for (auto& obj : objects_) k_.dq_enqueue(obj->queue, kStop);
}

}  // namespace bfly::elmwood
